"""Integration tests: cross-layer signals under the real MAC/PHY."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_network


def run_network(protocol="nlr", rate=60.0, sim_time=12.0, **kw):
    config = ScenarioConfig(
        protocol=protocol, grid_nx=4, grid_ny=4, spacing_m=230.0,
        n_flows=6, flow_pattern="gateway", n_gateways=1,
        flow_rate_pps=rate, sim_time_s=sim_time, warmup_s=2.0, seed=77,
        **kw,
    )
    net = build_network(config)
    net.start()
    net.sim.run(until=config.sim_time_s)
    net.stop()
    return net


class TestBusyRatioRespondsToLoad:
    def test_busy_ratio_rises_with_offered_load(self):
        light = run_network(rate=5.0)
        heavy = run_network(rate=80.0)

        def mean_busy(net):
            return sum(
                s.mac.channel_busy_ratio() for s in net.stacks
            ) / len(net.stacks)

        assert mean_busy(heavy) > mean_busy(light) + 0.1

    def test_gateway_neighbourhood_hotter_than_edge(self):
        net = run_network(rate=60.0)
        gw = net.gateways[0]
        # the gateway's own smoothed load vs the most distant corner's
        loads = {
            s.node_id: s.routing.estimator.load() for s in net.stacks
        }
        corner = max(
            range(len(net.stacks)),
            key=lambda i: abs(net.positions[i] - net.positions[gw]).sum(),
        )
        assert loads[gw] >= loads[corner]

    def test_advertised_loads_propagate(self):
        net = run_network(rate=60.0)
        heard_loads = [
            n.load
            for s in net.stacks
            for n in s.routing.neighbour_table.neighbours()
        ]
        assert heard_loads, "no neighbours learned"
        assert max(heard_loads) > 0.02  # someone is visibly loaded

    def test_neighbourhood_load_in_unit_interval(self):
        net = run_network(rate=80.0)
        for s in net.stacks:
            nl = s.routing.neighbourhood.value()
            assert 0.0 <= nl <= 1.0


class TestQueueSignal:
    def test_queue_occupancy_nonzero_under_saturation(self):
        net = run_network(rate=120.0, sim_time=10.0)
        peak_occupancy = max(
            s.mac.queue.enqueued - s.mac.queue.dequeued
            for s in net.stacks
        )
        drops = sum(s.mac.queue.dropped for s in net.stacks)
        assert peak_occupancy > 0 or drops > 0

    def test_mean_occupancy_statistics_available(self):
        net = run_network(rate=80.0, sim_time=8.0)
        means = [s.mac.queue.mean_occupancy() for s in net.stacks]
        assert all(m >= 0.0 for m in means)
        assert any(m > 0.0 for m in means)


class TestAdaptiveDampingEngages:
    def test_forwarding_probability_drops_under_load(self):
        net = run_network(protocol="nlr", rate=80.0, sim_time=15.0)
        policies = [s.routing.rreq_policy for s in net.stacks]
        flips = sum(p.coin_flips for p in policies)
        forced = sum(p.forced_forwards for p in policies)
        # the adaptive policy actually ran (both safeguard and coin paths)
        assert flips + forced > 0
        # and at least one node saw enough load to matter
        probs = [
            p.probability(s.routing.neighbourhood.value())
            for p, s in zip(policies, net.stacks)
        ]
        assert min(probs) < 1.0
