"""Ridge surrogate, prune auditing, and multi-criteria decision support."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dse import (
    ContinuousDim,
    Objective,
    ParameterSpace,
    PruneDecision,
    RidgeSurrogate,
    pareto_front,
    parse_objective,
    prune_candidates,
    seeded_rng,
    weighted_score,
)
from repro.dse.objectives import aggregate_objectives, extract_value


def quad_space() -> ParameterSpace:
    return ParameterSpace(
        "q",
        [
            ContinuousDim("x", "nlr.gamma", 0.0, 1.0),
            ContinuousDim("y", "nlr.queue_weight", 0.0, 1.0),
        ],
    )


class TestRidgeSurrogate:
    def test_recovers_quadratic(self):
        # Degree-2 features span the target exactly; ridge ≈ interpolation.
        space = quad_space()
        rng = seeded_rng(11, 0, 0)
        pts = [space.random_point(rng) for _ in range(60)]
        f = lambda p: 2.0 - (p["x"] - 0.3) ** 2 - 0.5 * p["x"] * p["y"]
        model = RidgeSurrogate(space, ridge=1e-8).fit(pts, [f(p) for p in pts])
        test = [space.random_point(rng) for _ in range(20)]
        preds = model.predict(test)
        truth = np.array([f(p) for p in test])
        assert np.allclose(preds, truth, atol=1e-3)

    def test_fit_is_deterministic(self):
        space = quad_space()
        rng = seeded_rng(12, 0, 0)
        pts = [space.random_point(rng) for _ in range(10)]
        ys = [p["x"] for p in pts]
        a = RidgeSurrogate(space).fit(pts, ys).predict(pts)
        b = RidgeSurrogate(space).fit(pts, ys).predict(pts)
        assert np.array_equal(a, b)

    def test_neg_inf_fitness_clamped(self):
        space = quad_space()
        pts = [{"x": 0.1, "y": 0.1}, {"x": 0.9, "y": 0.9}, {"x": 0.5, "y": 0.5}]
        model = RidgeSurrogate(space).fit(pts, [1.0, -math.inf, 2.0])
        assert np.all(np.isfinite(model.predict(pts)))

    def test_validation(self):
        space = quad_space()
        with pytest.raises(ValueError, match="degree"):
            RidgeSurrogate(space, degree=3)
        with pytest.raises(ValueError, match="ridge"):
            RidgeSurrogate(space, ridge=0.0)
        with pytest.raises(ValueError, match="training pairs"):
            RidgeSurrogate(space).fit([{"x": 0.1, "y": 0.1}], [1.0])
        with pytest.raises(RuntimeError, match="not fitted"):
            RidgeSurrogate(space).predict([{"x": 0.1, "y": 0.1}])


class TestPruning:
    def fitted(self) -> tuple[ParameterSpace, RidgeSurrogate]:
        space = quad_space()
        rng = seeded_rng(13, 0, 0)
        pts = [space.random_point(rng) for _ in range(30)]
        model = RidgeSurrogate(space).fit(pts, [p["x"] for p in pts])
        return space, model

    def test_prune_invariant_and_order(self):
        space, model = self.fitted()
        rng = seeded_rng(14, 0, 0)
        cands = [space.random_point(rng) for _ in range(20)]
        kept, decisions = prune_candidates(model, cands, 0.25)
        assert len(decisions) == len(cands)
        # Invariant: pruned iff predicted strictly below threshold.
        for d in decisions:
            assert d.pruned == (d.predicted < d.threshold)
        assert kept == [c for c, d in zip(cands, decisions) if not d.pruned]
        assert 0 < len(kept) < len(cands)

    def test_quantile_zero_keeps_everything(self):
        space, model = self.fitted()
        rng = seeded_rng(15, 0, 0)
        cands = [space.random_point(rng) for _ in range(10)]
        kept, decisions = prune_candidates(model, cands, 0.0)
        assert kept == cands
        assert not any(d.pruned for d in decisions)

    def test_ties_survive(self):
        space, model = self.fitted()
        cands = [{"x": 0.4, "y": 0.6}] * 6  # identical predictions
        kept, _ = prune_candidates(model, cands, 0.5)
        assert len(kept) == 6

    def test_empty_and_bad_quantile(self):
        space, model = self.fitted()
        assert prune_candidates(model, [], 0.3) == ([], [])
        with pytest.raises(ValueError, match="quantile"):
            prune_candidates(model, [{"x": 0.1, "y": 0.1}], 1.0)

    def test_decision_serialises(self):
        d = PruneDecision({"x": 0.5}, 1.25, 1.5, True)
        assert d.to_dict() == {
            "point": {"x": 0.5}, "predicted": 1.25,
            "threshold": 1.5, "pruned": True,
        }


class TestObjectives:
    def test_parse(self):
        obj = parse_objective("mean_delay_s:min:2:0.1")
        assert obj == Objective("mean_delay_s", "min", weight=2.0, scale=0.1)
        assert parse_objective("pdr:max").weight == 1.0
        with pytest.raises(ValueError, match="not key:goal"):
            parse_objective("pdr")
        with pytest.raises(ValueError, match="goal"):
            parse_objective("pdr:upwards")
        with pytest.raises(ValueError, match="weight"):
            Objective("pdr", "max", weight=-1.0)
        with pytest.raises(ValueError, match="scale"):
            Objective("pdr", "max", scale=0.0)

    def test_weighted_score_direction_and_poison(self):
        objs = [Objective("pdr", "max"), Objective("mean_delay_s", "min", scale=0.1)]
        good = weighted_score({"pdr": 0.9, "mean_delay_s": 0.05}, objs)
        slow = weighted_score({"pdr": 0.9, "mean_delay_s": 0.20}, objs)
        assert good > slow
        poisoned = weighted_score({"pdr": 0.9, "mean_delay_s": math.nan}, objs)
        assert poisoned == -math.inf

    def test_pareto_front(self):
        objs = [Objective("pdr", "max"), Objective("mean_delay_s", "min")]
        rows = [
            {"pdr": 0.9, "mean_delay_s": 0.10},  # front
            {"pdr": 0.8, "mean_delay_s": 0.05},  # front (faster)
            {"pdr": 0.8, "mean_delay_s": 0.20},  # dominated by both
            {"pdr": 0.9, "mean_delay_s": 0.10},  # duplicate of 0 — stays
        ]
        assert pareto_front(rows, objs) == [0, 1, 3]

    def test_pareto_nan_rows_dominated(self):
        objs = [Objective("pdr", "max"), Objective("mean_delay_s", "min")]
        rows = [
            {"pdr": 0.5, "mean_delay_s": 0.2},
            {"pdr": math.nan, "mean_delay_s": 0.1},
        ]
        assert pareto_front(rows, objs) == [0]

    def test_single_objective_front_is_argmax(self):
        objs = [Objective("pdr", "max")]
        rows = [{"pdr": v} for v in (0.2, 0.9, 0.5, 0.9)]
        assert pareto_front(rows, objs) == [1, 3]


class TestExtraction:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import ScenarioConfig

        cfg = ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
            sim_time_s=6.0, warmup_s=1.0, seed=3,
        )
        return run_scenario(cfg)

    def test_extracts_scalar_total_and_snapshot(self, result):
        assert 0.0 <= extract_value(result, "pdr") <= 1.0
        assert extract_value(result, "hello_tx") >= 0.0
        with pytest.raises(KeyError, match="not found"):
            extract_value(result, "no_such_metric")

    def test_aggregate_means_across_seeds(self, result):
        objs = [Objective("pdr", "max")]
        agg = aggregate_objectives([result, result], objs)
        assert agg == {"pdr": extract_value(result, "pdr")}
