"""Unit tests for SINR error models."""

import pytest

from repro.phy.error_models import (
    Dsss11ErrorModel,
    PskErrorModel,
    SinrThresholdErrorModel,
    q_function,
)


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.0) == pytest.approx(0.158655, rel=1e-4)
        assert q_function(3.0) == pytest.approx(0.001349, rel=1e-3)

    def test_monotone_decreasing(self):
        xs = [0.0, 0.5, 1.0, 2.0, 4.0]
        qs = [q_function(x) for x in xs]
        assert all(a > b for a, b in zip(qs, qs[1:]))


class TestThresholdModel:
    def test_above_threshold_succeeds(self):
        m = SinrThresholdErrorModel(threshold_db=10.0)
        assert m.segment_success_probability(10.0 ** (10.1 / 10), 1000) == 1.0

    def test_below_threshold_fails(self):
        m = SinrThresholdErrorModel(threshold_db=10.0)
        assert m.segment_success_probability(10.0 ** (9.9 / 10), 1000) == 0.0

    def test_frame_probability_is_product(self):
        m = SinrThresholdErrorModel(threshold_db=10.0)
        good, bad = 20.0, 1.0
        assert m.frame_success_probability([(good, 100), (good, 100)]) == 1.0
        assert m.frame_success_probability([(good, 100), (bad, 1)]) == 0.0

    def test_zero_bit_segments_ignored(self):
        m = SinrThresholdErrorModel()
        assert m.frame_success_probability([(0.1, 0)]) == 1.0


class TestPsk:
    def test_bpsk_ber_at_known_snr(self):
        m = PskErrorModel(1)
        # BPSK at Eb/N0 ~ 9.6 dB gives BER ≈ 1e-5 (textbook point)
        ber = m.bit_error_rate(10 ** (9.6 / 10))
        assert ber == pytest.approx(1e-5, rel=0.3)

    def test_ber_decreasing_in_sinr(self):
        m = PskErrorModel(2)
        bers = [m.bit_error_rate(s) for s in [0.1, 1.0, 5.0, 20.0]]
        assert all(a > b for a, b in zip(bers, bers[1:]))

    def test_zero_sinr_is_coinflip(self):
        assert PskErrorModel(1).bit_error_rate(0.0) == 0.5

    def test_success_probability_falls_with_length(self):
        m = PskErrorModel(1)
        p_short = m.segment_success_probability(2.0, 100)
        p_long = m.segment_success_probability(2.0, 10_000)
        assert p_short > p_long

    def test_higher_order_worse_at_same_sinr(self):
        bpsk = PskErrorModel(1).bit_error_rate(5.0)
        psk8 = PskErrorModel(3).bit_error_rate(5.0)
        assert psk8 > bpsk

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            PskErrorModel(0)


class TestDsss:
    def test_rates_accepted(self):
        for rate in (1e6, 2e6, 5.5e6, 11e6):
            Dsss11ErrorModel(rate)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dsss11ErrorModel(54e6)

    def test_lower_rate_more_robust(self):
        sinr = 0.5
        bers = [
            Dsss11ErrorModel(r).bit_error_rate(sinr)
            for r in (1e6, 2e6, 5.5e6, 11e6)
        ]
        assert all(a < b for a, b in zip(bers, bers[1:]))

    def test_high_sinr_reliable_frame(self):
        m = Dsss11ErrorModel(11e6)
        # CCK at 10 dB is usable but not error-free over 1500 B ...
        assert m.segment_success_probability(10 ** (10 / 10), 8 * 1500) > 0.9
        # ... and essentially perfect by 14 dB.
        assert m.segment_success_probability(10 ** (14 / 10), 8 * 1500) > 0.999

    def test_negative_sinr_coinflip(self):
        assert Dsss11ErrorModel(2e6).bit_error_rate(-1.0) == 0.5
