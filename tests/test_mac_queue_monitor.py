"""Unit tests for the interface queue and busy monitor."""

import pytest

from repro.mac.busy_monitor import BusyMonitor
from repro.mac.queue import DropTailQueue
from repro.sim.engine import Simulator


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(Simulator(), capacity=5)
        for x in "abc":
            assert q.push(x)
        assert [q.pop(), q.pop(), q.pop()] == list("abc")

    def test_drop_when_full(self):
        q = DropTailQueue(Simulator(), capacity=2)
        assert q.push(1) and q.push(2)
        assert not q.push(3)
        assert q.dropped == 1
        assert len(q) == 2

    def test_pop_empty_returns_none(self):
        q = DropTailQueue(Simulator(), capacity=1)
        assert q.pop() is None

    def test_peek_does_not_remove(self):
        q = DropTailQueue(Simulator(), capacity=2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_occupancy_ratio(self):
        q = DropTailQueue(Simulator(), capacity=4)
        assert q.occupancy_ratio == 0.0
        q.push(1)
        q.push(2)
        assert q.occupancy_ratio == 0.5

    def test_drop_ratio(self):
        q = DropTailQueue(Simulator(), capacity=1)
        q.push(1)
        q.push(2)
        q.push(3)
        assert q.drop_ratio() == pytest.approx(2 / 3)
        assert DropTailQueue(Simulator(), 1).drop_ratio() == 0.0

    def test_mean_occupancy_time_weighted(self):
        sim = Simulator()
        q = DropTailQueue(sim, capacity=10)
        sim.schedule(0.0, q.push, "a")       # len 1 over [0, 2)
        sim.schedule(2.0, q.push, "b")       # len 2 over [2, 4)
        sim.schedule(4.0, q.pop)             # len 1 over [4, 8)
        sim.run(until=8.0)
        # integral = 1*2 + 2*2 + 1*4 = 10 over 8 s
        assert q.mean_occupancy() == pytest.approx(10 / 8)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(Simulator(), capacity=0)

    def test_counters(self):
        q = DropTailQueue(Simulator(), capacity=2)
        q.push(1)
        q.push(2)
        q.pop()
        assert (q.enqueued, q.dequeued, q.dropped) == (2, 1, 0)


class TestBusyMonitor:
    def test_initially_idle(self):
        m = BusyMonitor(Simulator(), window_s=1.0)
        assert m.busy_ratio() == 0.0
        assert not m.currently_busy

    def test_full_busy_window(self):
        sim = Simulator()
        m = BusyMonitor(sim, window_s=1.0)
        sim.schedule(0.0, m.on_medium_state, True)
        sim.run(until=2.0)
        assert m.busy_ratio() == pytest.approx(1.0)

    def test_half_busy(self):
        sim = Simulator()
        m = BusyMonitor(sim, window_s=1.0)
        sim.schedule(0.0, m.on_medium_state, True)
        sim.schedule(0.5, m.on_medium_state, False)
        sim.run(until=1.0)
        assert m.busy_ratio() == pytest.approx(0.5)

    def test_old_intervals_age_out(self):
        sim = Simulator()
        m = BusyMonitor(sim, window_s=1.0)
        sim.schedule(0.0, m.on_medium_state, True)
        sim.schedule(0.5, m.on_medium_state, False)
        sim.run(until=5.0)
        assert m.busy_ratio() == pytest.approx(0.0)

    def test_repeated_transitions_idempotent(self):
        sim = Simulator()
        m = BusyMonitor(sim, window_s=1.0)
        sim.schedule(0.0, m.on_medium_state, True)
        sim.schedule(0.1, m.on_medium_state, True)   # repeat
        sim.schedule(0.5, m.on_medium_state, False)
        sim.schedule(0.6, m.on_medium_state, False)  # repeat
        sim.run(until=1.0)
        assert m.busy_ratio() == pytest.approx(0.5)

    def test_startup_normalisation(self):
        # At t=0.2 with 0.1 s busy, the observed span is 0.2 s → ratio 0.5,
        # not 0.1 (which a naive /window would give).
        sim = Simulator()
        m = BusyMonitor(sim, window_s=1.0)
        sim.schedule(0.0, m.on_medium_state, True)
        sim.schedule(0.1, m.on_medium_state, False)
        sim.run(until=0.2)
        assert m.busy_ratio() == pytest.approx(0.5)

    def test_many_short_intervals(self):
        sim = Simulator()
        m = BusyMonitor(sim, window_s=1.0)
        for k in range(10):
            sim.schedule(k * 0.1, m.on_medium_state, True)
            sim.schedule(k * 0.1 + 0.05, m.on_medium_state, False)
        sim.run(until=1.0)
        assert m.busy_ratio() == pytest.approx(0.5, abs=0.06)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BusyMonitor(Simulator(), window_s=0.0)

    def test_running_sum_matches_naive_recompute(self):
        # The O(1) cumulative-sum query must agree with re-summing the
        # deque over a long, irregular transition stream.
        import numpy as np

        sim = Simulator()
        m = BusyMonitor(sim, window_s=0.5)
        rng = np.random.default_rng(21)
        t, busy = 0.0, False
        for _ in range(500):
            t += float(rng.uniform(0.001, 0.2))
            busy = not busy
            sim.schedule(t, m.on_medium_state, busy)
            sim.schedule(t + 1e-4, self._check_against_naive, m)
        sim.run()

    @staticmethod
    def _check_against_naive(m):
        now = m.sim.now
        horizon = now - m.window_s
        naive = sum(e - max(s, horizon) for s, e in m._intervals)
        if m._busy_since is not None:
            naive += now - max(m._busy_since, horizon)
        span = min(m.window_s, max(now - m._created, 1e-12))
        naive_ratio = min(1.0, max(0.0, naive / span))
        assert m.busy_ratio() == pytest.approx(naive_ratio, abs=1e-12)
