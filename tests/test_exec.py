"""Tests for the parallel campaign executor (repro.exec)."""

import json
import os

import pytest

from repro.exec import (
    Campaign,
    CampaignExecutor,
    CheckpointStore,
    ExecPolicy,
    Task,
    configure,
    current_policy,
    run_configs,
    using,
)
from repro.exec.worker import FAULT_ENV, execute_payload, payload_for_config
from repro.experiments.runner import replicate, run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import result_from_dict, result_to_dict


def tiny(protocol="aodv", **kw):
    defaults = dict(
        protocol=protocol, grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=8.0, warmup_s=1.0, seed=3,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep checkpoints/cache out of the repo's results/ directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path


class TestTaskModel:
    def test_task_id_stable(self):
        assert Task(tiny()).task_id == Task(tiny()).task_id

    def test_task_id_seed_sensitive(self):
        assert Task(tiny(seed=1)).task_id != Task(tiny(seed=2)).task_id

    def test_task_id_config_sensitive(self):
        assert Task(tiny("aodv")).task_id != Task(tiny("nlr")).task_id

    def test_tag_not_in_id(self):
        assert Task(tiny(), tag="a").task_id == Task(tiny(), tag="b").task_id

    def test_replication_seed_ladder(self):
        campaign = Campaign.replication("r", tiny(seed=10), n_runs=3)
        assert [t.config.seed for t in campaign.tasks] == [10, 11, 12]

    def test_duplicate_tasks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Campaign("dup", [Task(tiny()), Task(tiny())])

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="no tasks"):
            Campaign("empty", [])


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "cells")
        result = run_scenario(tiny())
        store.store("abc", result_to_dict(result))
        assert "abc" in store
        loaded = result_from_dict(store.load("abc"))
        assert loaded.as_dict() == result.as_dict()
        assert loaded.config.seed == result.config.seed

    def test_corrupt_entry_deleted_and_missed(self, tmp_path):
        store = CheckpointStore(tmp_path / "cells")
        store.path("bad").write_text('{"schema": 1, "result": {tru')
        assert store.load("bad") is None
        assert not store.path("bad").exists()

    def test_stale_schema_invalidated(self, tmp_path):
        store = CheckpointStore(tmp_path / "cells")
        store.path("old").write_text(json.dumps({"schema": 0, "result": {}}))
        assert store.load("old") is None
        assert not store.path("old").exists()

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path / "cells")
        store.store("a", {"x": 1})
        store.store("b", {"x": 2})
        assert store.clear() == 2
        assert store.load("a") is None


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecPolicy(workers=0)
        with pytest.raises(ValueError):
            ExecPolicy(retries=-1)
        with pytest.raises(ValueError):
            ExecPolicy(task_timeout_s=0.0)

    def test_checkpoint_auto(self):
        assert not ExecPolicy().wants_checkpoint
        assert ExecPolicy(workers=2).wants_checkpoint
        assert ExecPolicy(resume=True).wants_checkpoint
        assert not ExecPolicy(workers=2, checkpoint=False).wants_checkpoint

    def test_using_restores(self):
        before = current_policy()
        with using(workers=7) as active:
            assert active.workers == 7
            assert current_policy().workers == 7
        assert current_policy() == before

    def test_configure_replaces(self):
        saved = current_policy()
        try:
            assert configure(retries=5).retries == 5
            assert current_policy().retries == 5
        finally:
            configure(**{f: getattr(saved, f) for f in (
                "workers", "task_timeout_s", "retries", "backoff_s",
                "resume", "checkpoint", "progress", "log_dir")})


class TestSerialExecutor:
    def test_matches_direct_run(self):
        campaign = Campaign.replication("s", tiny(), n_runs=2)
        result = CampaignExecutor(ExecPolicy()).run(campaign)
        assert result.ok == 2 and result.failed == 0
        direct = [run_scenario(t.config) for t in campaign.tasks]
        assert [r.as_dict() for r in result.results()] == [
            r.as_dict() for r in direct
        ]

    def test_checkpoint_and_resume_skip_recompute(self, monkeypatch):
        campaign = Campaign.replication("ck", tiny(), n_runs=2)
        policy = ExecPolicy(checkpoint=True)
        CampaignExecutor(policy).run(campaign)

        calls = []
        import repro.exec.scheduler as scheduler_mod

        real = scheduler_mod.execute_payload
        monkeypatch.setattr(
            scheduler_mod, "execute_payload",
            lambda payload: calls.append(1) or real(payload),
        )
        resumed = CampaignExecutor(ExecPolicy(resume=True)).run(campaign)
        assert calls == []  # nothing recomputed
        assert all(o.source == "checkpoint" for o in resumed.outcomes)
        assert [r.as_dict() for r in resumed.results()]

    def test_retry_then_success(self, monkeypatch):
        import repro.exec.scheduler as scheduler_mod

        real = scheduler_mod.execute_payload
        attempts = []

        def flaky(payload):
            attempts.append(1)
            if len(attempts) == 1:
                return {"ok": False, "kind": "error", "error": "boom",
                        "duration_s": 0.0}
            return real(payload)

        monkeypatch.setattr(scheduler_mod, "execute_payload", flaky)
        campaign = Campaign.from_configs("flaky", [tiny()])
        result = CampaignExecutor(
            ExecPolicy(retries=1, backoff_s=0.0)
        ).run(campaign)
        assert result.ok == 1
        assert result.outcomes[0].attempts == 2

    def test_failure_recorded_and_strict_raises(self, monkeypatch):
        import repro.exec.scheduler as scheduler_mod

        monkeypatch.setattr(
            scheduler_mod, "execute_payload",
            lambda payload: {"ok": False, "kind": "error", "error": "boom",
                             "duration_s": 0.0},
        )
        campaign = Campaign.from_configs("dead", [tiny()])
        result = CampaignExecutor(ExecPolicy(retries=0)).run(campaign)
        assert result.failed == 1
        assert result.outcomes[0].kind == "error"
        with pytest.raises(RuntimeError, match="1 of 1 tasks failed"):
            result.results()
        assert result.results(strict=False) == []


class TestWorker:
    def test_execute_payload_ok(self):
        out = execute_payload(payload_for_config(tiny(), None))
        assert out["ok"]
        assert result_from_dict(out["result"]).packets_sent > 0

    def test_execute_payload_error_contained(self):
        payload = payload_for_config(tiny(), None)
        payload["config"]["protocol"] = "ospf"  # invalid at reconstruction
        out = execute_payload(payload)
        assert not out["ok"] and out["kind"] == "error"
        assert "ospf" in out["error"]

    def test_timeout_enforced(self):
        heavy = tiny(grid_nx=5, grid_ny=5, n_flows=10, flow_rate_pps=50.0,
                     sim_time_s=120.0, warmup_s=1.0)
        out = execute_payload(payload_for_config(heavy, 0.1))
        assert not out["ok"] and out["kind"] == "timeout"


class TestParallelExecutor:
    def test_parallel_matches_serial_byte_identical(self):
        configs = [tiny(p, seed=s) for p in ("aodv", "nlr") for s in (3, 4)]
        serial = run_configs("grid-serial", configs, ExecPolicy())
        parallel = run_configs(
            "grid-parallel", configs, ExecPolicy(workers=2)
        )
        a = json.dumps([r.as_dict() for r in serial], sort_keys=True)
        b = json.dumps([r.as_dict() for r in parallel], sort_keys=True)
        assert a == b

    def test_timeout_isolated_from_siblings(self):
        heavy = tiny(grid_nx=5, grid_ny=5, n_flows=10, flow_rate_pps=50.0,
                     sim_time_s=120.0, warmup_s=1.0, seed=50)
        campaign = Campaign.from_configs("mix", [tiny(seed=3), heavy])
        result = CampaignExecutor(
            ExecPolicy(workers=2, task_timeout_s=0.5, retries=0,
                       backoff_s=0.0)
        ).run(campaign)
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        assert by_seed[3].ok
        assert by_seed[50].kind == "timeout"

    def test_worker_crash_isolated_and_resumable(self, monkeypatch):
        crash_seed = 777
        configs = [tiny(seed=3), tiny(seed=4), tiny(seed=crash_seed)]
        campaign = Campaign.from_configs("crashy", configs)
        monkeypatch.setenv(FAULT_ENV, f"exit:{crash_seed}")
        policy = ExecPolicy(workers=2, retries=0, backoff_s=0.0)
        result = CampaignExecutor(policy).run(campaign)
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        assert by_seed[3].ok and by_seed[4].ok
        assert by_seed[crash_seed].status == "failed"
        assert by_seed[crash_seed].kind == "crash"

        # The survivors' cells are checkpointed: fixing the fault and
        # resuming completes the campaign without recomputing them.
        monkeypatch.delenv(FAULT_ENV)
        resumed = CampaignExecutor(
            ExecPolicy(workers=2, resume=True, retries=0, backoff_s=0.0)
        ).run(campaign)
        sources = {
            o.task.config.seed: o.source for o in resumed.outcomes
        }
        assert sources[3] == "checkpoint" and sources[4] == "checkpoint"
        assert sources[crash_seed] == "run"
        assert resumed.ok == 3


class TestReplicateIntegration:
    def test_replicate_parallel_summary_identical(self):
        cfg = tiny()
        runs_s, summary_s = replicate(cfg, n_runs=2)
        runs_p, summary_p = replicate(
            cfg, n_runs=2, policy=ExecPolicy(workers=2)
        )
        assert [r.as_dict() for r in runs_s] == [r.as_dict() for r in runs_p]
        assert {k: (ci.mean, ci.half_width) for k, ci in summary_s.items()} \
            == {k: (ci.mean, ci.half_width) for k, ci in summary_p.items()}

    def test_run_configs_order_is_input_order(self):
        configs = [tiny(seed=s) for s in (9, 7, 8)]
        results = run_configs("order", configs, ExecPolicy(workers=2))
        assert [r.config.seed for r in results] == [9, 7, 8]


class TestProgress:
    def test_jsonl_run_log(self, tmp_path):
        from repro.exec import ProgressReporter

        log = tmp_path / "run.jsonl"
        reporter = ProgressReporter(
            stream=open(os.devnull, "w"), log_path=log, min_interval_s=0.0
        )
        campaign = Campaign.replication("logged", tiny(), n_runs=2)
        CampaignExecutor(ExecPolicy(), reporter=reporter).run(campaign)
        events = [json.loads(line) for line in log.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign_start" and kinds[-1] == "campaign_end"
        assert kinds.count("task_done") == 2
        done = [e for e in events if e["event"] == "task_done"]
        assert all(e["status"] == "ok" for e in done)
        assert all(e["events_executed"] > 0 for e in done)
        assert events[-1]["ok"] == 2 and events[-1]["failed"] == 0
