"""Tests for the pluggable execution backends (repro.exec.backends).

Covers the byte-identity contract every backend owes the serial
reference, the warm pool's exact crash attribution, the filestore
backend's claim protocol (including the stale-lock sweep and
kill-mid-claim resume), and the scheduler's retry/timeout/quarantine
paths under ``--workers 4``.
"""

import json
import os
import subprocess
import threading
import time

import pytest

from repro.exec import (
    Campaign,
    CampaignExecutor,
    CheckpointStore,
    ClaimStore,
    ExecPolicy,
    FileStoreBackend,
    quarantine_dir,
    run_configs,
    shared_warm_pool,
    shutdown_shared_pools,
)
from repro.exec.worker import FAULT_ENV
from repro.experiments.scenario import ScenarioConfig


def tiny(protocol="aodv", **kw):
    defaults = dict(
        protocol=protocol, grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=8.0, warmup_s=1.0, seed=3,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def metric_dump(results):
    return json.dumps([r.as_dict() for r in results], sort_keys=True)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path


@pytest.fixture
def warm_pools():
    """Fresh warm pools per test (they are process-wide otherwise)."""
    shutdown_shared_pools()
    yield
    shutdown_shared_pools()


class TestBackendIdentity:
    def test_warm_matches_serial(self, warm_pools):
        configs = [tiny(p, seed=s) for p in ("aodv", "nlr") for s in (3, 4)]
        serial = run_configs("id-serial", configs, ExecPolicy())
        warm = run_configs(
            "id-warm", configs,
            ExecPolicy(workers=2, backend="warm", checkpoint=False),
        )
        assert metric_dump(serial) == metric_dump(warm)

    def test_filestore_matches_serial(self):
        configs = [tiny(seed=s) for s in (3, 4, 5)]
        serial = run_configs("id-serial", configs, ExecPolicy())
        fs = run_configs(
            "id-fs", configs, ExecPolicy(workers=2, backend="filestore")
        )
        assert metric_dump(serial) == metric_dump(fs)

    def test_explicit_pool_matches_serial(self):
        configs = [tiny(seed=s) for s in (3, 4)]
        serial = run_configs("id-serial", configs, ExecPolicy())
        pool = run_configs(
            "id-pool", configs,
            ExecPolicy(workers=2, backend="pool", checkpoint=False),
        )
        assert metric_dump(serial) == metric_dump(pool)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecPolicy(backend="carrier-pigeon")


class TestWarmPool:
    def test_pool_is_shared_and_workers_persist(self, warm_pools):
        pool = shared_warm_pool(2)
        assert shared_warm_pool(2) is pool
        pids_before = sorted(p.pid for p in pool._procs)
        configs = [tiny(seed=s) for s in (3, 4, 5)]
        run_configs(
            "warm-a", configs,
            ExecPolicy(workers=2, backend="warm", checkpoint=False),
        )
        run_configs(
            "warm-b", [tiny(seed=6)],
            ExecPolicy(workers=2, backend="warm", checkpoint=False),
        )
        assert sorted(p.pid for p in pool._procs) == pids_before

    def test_crash_attributed_to_exact_cell(self, warm_pools, monkeypatch):
        crash_seed = 777
        monkeypatch.setenv(FAULT_ENV, f"exit:{crash_seed}")
        campaign = Campaign.from_configs(
            "warm-crashy", [tiny(seed=3), tiny(seed=4), tiny(seed=crash_seed)]
        )
        policy = ExecPolicy(
            workers=2, backend="warm", retries=0, backoff_s=0.0,
            checkpoint=False,
        )
        result = CampaignExecutor(policy).run(campaign)
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        assert by_seed[3].ok and by_seed[4].ok
        assert by_seed[crash_seed].status == "failed"
        assert by_seed[crash_seed].kind == "crash"
        # The pool replaced its casualty and keeps serving.
        monkeypatch.delenv(FAULT_ENV)
        shutdown_shared_pools()
        again = CampaignExecutor(policy).run(campaign)
        assert again.ok == 3


class TestClaimStore:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        claims = ClaimStore(tmp_path / "claims")
        assert claims.try_claim("t1")
        assert not claims.try_claim("t1")
        claims.release("t1")
        assert claims.try_claim("t1")

    def test_live_same_host_claim_not_stale(self, tmp_path):
        claims = ClaimStore(tmp_path / "claims")
        claims.try_claim("t1")  # our own live PID
        assert not claims.is_stale("t1", ttl_s=0.0)

    def test_dead_pid_claim_is_stale_immediately(self, tmp_path):
        claims = ClaimStore(tmp_path / "claims")
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()  # reaped: the PID is provably gone
        claims.path("t1").write_text(json.dumps(
            {"pid": proc.pid, "host": claims.host, "t": time.time()}
        ))
        assert claims.is_stale("t1", ttl_s=3600.0)
        assert claims.sweep_stale(["t1"], ttl_s=3600.0) == ["t1"]
        assert not claims.path("t1").exists()

    def test_foreign_host_claim_needs_ttl(self, tmp_path):
        claims = ClaimStore(tmp_path / "claims")
        path = claims.path("t1")
        path.write_text(json.dumps(
            {"pid": 1, "host": "some-other-host", "t": time.time()}
        ))
        assert not claims.is_stale("t1", ttl_s=3600.0)
        old = time.time() - 100.0
        os.utime(path, (old, old))
        assert claims.is_stale("t1", ttl_s=60.0)

    def test_torn_claim_gets_grace_then_reaped(self, tmp_path):
        claims = ClaimStore(tmp_path / "claims")
        path = claims.path("t1")
        path.write_text('{"pid": 12')  # claimant died mid-write
        assert not claims.is_stale("t1", ttl_s=3600.0)  # within grace
        old = time.time() - 10.0
        os.utime(path, (old, old))
        assert claims.is_stale("t1", ttl_s=3600.0)

    def test_released_claim_not_stale(self, tmp_path):
        claims = ClaimStore(tmp_path / "claims")
        assert not claims.is_stale("never-claimed", ttl_s=0.0)


class TestFileStoreResume:
    def test_killed_launcher_claim_swept_and_cell_finished(self):
        """SIGKILL-mid-claim shape: a dead peer's claim must not wedge us."""
        configs = [tiny(seed=s) for s in (3, 4, 5)]
        campaign = Campaign.from_configs("fs-resume", configs)
        store = CheckpointStore()
        backend = FileStoreBackend(store=store, poll_s=0.05)
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        wedged = campaign.tasks[1].task_id
        backend.claims.path(wedged).write_text(json.dumps(
            {"pid": proc.pid, "host": backend.claims.host, "t": time.time()}
        ))
        policy = ExecPolicy(workers=2, backend="filestore", backoff_s=0.0)
        result = CampaignExecutor(policy, backend=backend).run(campaign)
        assert result.ok == 3
        assert not backend.claims.path(wedged).exists()
        serial = run_configs("fs-resume-ref", configs, ExecPolicy())
        assert metric_dump(serial) == metric_dump(
            [o.result for o in result.outcomes]
        )

    def test_peer_checkpoint_absorbed_without_local_run(self):
        """A cell claimed by a live peer is awaited, not recomputed."""
        configs = [tiny(seed=s) for s in (3, 4)]
        campaign = Campaign.from_configs("fs-peer", configs)
        store = CheckpointStore()
        backend = FileStoreBackend(store=store, poll_s=0.05)
        peer_task = campaign.tasks[0]
        assert backend.claims.try_claim(peer_task.task_id)  # live peer: us

        def peer_finishes():
            from repro.exec.worker import execute_payload, payload_for_config
            from repro.experiments.serialization import result_to_dict  # noqa: F401

            out = execute_payload(payload_for_config(peer_task.config, None))
            store.store(peer_task.task_id, out["result"])
            backend.claims.release(peer_task.task_id)

        t = threading.Thread(target=peer_finishes)
        t.start()
        policy = ExecPolicy(workers=2, backend="filestore", backoff_s=0.0)
        result = CampaignExecutor(policy, backend=backend).run(campaign)
        t.join()
        assert result.ok == 2
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        # Peer-delivered cells carry no local compute time.
        assert by_seed[3].duration_s == 0.0
        assert by_seed[4].duration_s > 0.0


class TestRetryTimeoutQuarantine:
    """Scheduler failure paths under ``--workers 4`` (satellite: retries)."""

    def test_error_retry_then_success_and_identity(self, tmp_path, monkeypatch):
        fault_seed = 4
        monkeypatch.setenv(
            FAULT_ENV, f"error_once:{fault_seed}:{tmp_path}"
        )
        configs = [tiny(seed=s) for s in (3, 4, 5, 6)]
        campaign = Campaign.from_configs("retry-err", configs)
        policy = ExecPolicy(workers=4, retries=1, backoff_s=0.0)
        result = CampaignExecutor(policy).run(campaign)
        assert result.ok == 4
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        assert by_seed[fault_seed].attempts == 2  # failed once, retried
        assert (tmp_path / f"fault-error_once-{fault_seed}.fired").exists()
        monkeypatch.delenv(FAULT_ENV)
        serial = run_configs("retry-err-ref", configs, ExecPolicy())
        assert metric_dump(serial) == metric_dump(
            [o.result for o in result.outcomes]
        )

    def test_timeout_retry_then_success(self, tmp_path, monkeypatch):
        fault_seed = 5
        monkeypatch.setenv(
            FAULT_ENV, f"hang_once:{fault_seed}:{tmp_path}"
        )
        configs = [tiny(seed=s) for s in (3, 5)]
        campaign = Campaign.from_configs("retry-hang", configs)
        policy = ExecPolicy(
            workers=4, retries=1, backoff_s=0.0, task_timeout_s=2.0
        )
        result = CampaignExecutor(policy).run(campaign)
        assert result.ok == 2
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        # First attempt hung into the timeout, second ran clean.
        assert by_seed[fault_seed].attempts == 2
        assert by_seed[3].attempts == 1

    def test_terminal_failure_writes_quarantine_record(self, tmp_path, monkeypatch):
        fault_seed = 6
        monkeypatch.setenv(
            FAULT_ENV, f"error_once:{fault_seed}:{tmp_path}"
        )
        configs = [tiny(seed=s) for s in (3, 6)]
        campaign = Campaign.from_configs("quarantine-me", configs)
        policy = ExecPolicy(workers=4, retries=0, backoff_s=0.0)
        result = CampaignExecutor(policy).run(campaign)
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        assert by_seed[3].ok
        assert by_seed[fault_seed].status == "failed"
        record_path = quarantine_dir() / f"{campaign.tasks[1].task_id}.json"
        assert record_path.exists()
        record = json.loads(record_path.read_text())
        assert record["campaign"] == "quarantine-me"
        assert record["seed"] == fault_seed
        assert record["kind"] == "error"
        assert "injected one-shot error" in record["error"]

    def test_crash_quarantine_record(self, monkeypatch):
        crash_seed = 888
        monkeypatch.setenv(FAULT_ENV, f"exit:{crash_seed}")
        configs = [tiny(seed=3), tiny(seed=crash_seed)]
        campaign = Campaign.from_configs("quarantine-crash", configs)
        policy = ExecPolicy(workers=4, retries=0, backoff_s=0.0)
        result = CampaignExecutor(policy).run(campaign)
        by_seed = {o.task.config.seed: o for o in result.outcomes}
        assert by_seed[crash_seed].kind == "crash"
        record = json.loads(
            (quarantine_dir() / f"{campaign.tasks[1].task_id}.json").read_text()
        )
        assert record["kind"] == "crash"
        assert "died repeatedly" in record["error"]
