"""Tests for scenario construction, the runner, sweeps, cache, and CLI."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.cache import cache_key, cached
from repro.experiments.runner import ScenarioResult, replicate, run_scenario
from repro.experiments.scenario import PROTOCOLS, ScenarioConfig, build_network
from repro.experiments.sweeps import sweep


def tiny(protocol="aodv", **kw):
    defaults = dict(
        protocol=protocol, grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=8.0, warmup_s=1.0, seed=3,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestScenarioConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(protocol="ospf")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(topology="torus")

    def test_warmup_bound(self):
        with pytest.raises(ValueError):
            ScenarioConfig(sim_time_s=5.0, warmup_s=5.0)

    def test_node_count(self):
        assert ScenarioConfig(grid_nx=4, grid_ny=5).node_count == 20
        assert ScenarioConfig(topology="random", n_nodes=17).node_count == 17

    def test_registry_covers_all_variants(self):
        assert {"aodv", "gossip", "counter", "nlr", "oracle",
                "nlr-queue", "nlr-busy", "nlr-own", "nlr-noprob",
                "nlr-noselect"} <= set(PROTOCOLS)

    def test_mobile_fraction_bounds(self):
        with pytest.raises(ValueError):
            ScenarioConfig(mobile_fraction=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(mobile_fraction=1.5)

    def test_mobile_fraction_selects_highest_ids(self):
        # 9 nodes at 25% mobile → the last round(9·0.25) = 2 roam, the
        # rest are the static mesh backbone.
        net = build_network(tiny(mobility="rwp", mobile_fraction=0.25))
        assert net.mobility.node_ids == [7, 8]
        net = build_network(tiny(mobility="rwp"))
        assert net.mobility.node_ids == list(range(9))


class TestBuildNetwork:
    def test_grid_build(self):
        net = build_network(tiny())
        assert len(net.stacks) == 9
        assert net.channel is not None
        assert len(net.flows) == 2
        assert net.graph.number_of_nodes() == 9

    def test_perfect_mac_build(self):
        net = build_network(tiny(mac="perfect"))
        assert net.perfect_net is not None
        assert net.channel is None

    def test_random_topology_connected(self):
        import networkx as nx

        net = build_network(tiny(topology="random", n_nodes=12))
        assert nx.is_connected(net.graph)

    def test_gateway_pattern_selects_gateways(self):
        net = build_network(tiny(flow_pattern="gateway", n_gateways=2))
        assert len(net.gateways) == 2
        gws = set(net.gateways)
        assert all(f.src in gws or f.dst in gws for f in net.flows)

    def test_oracle_protocol_gets_oracle(self):
        net = build_network(tiny(protocol="oracle"))
        assert net.oracle is not None

    def test_per_protocol_variants_construct(self):
        for proto in PROTOCOLS:
            net = build_network(tiny(protocol=proto))
            assert net.stacks[0].routing is not None

    def test_shadowing_build(self):
        from repro.phy.propagation import LogNormalShadowing

        net = build_network(tiny(shadowing_sigma_db=4.0))
        assert isinstance(net.channel.propagation, LogNormalShadowing)


class TestRunner:
    def test_run_scenario_produces_result(self):
        r = run_scenario(tiny())
        assert isinstance(r, ScenarioResult)
        assert 0.0 <= r.pdr <= 1.0
        assert r.packets_sent > 0
        assert r.events_executed > 0
        assert len(r.per_node_forwarded) == 9

    def test_determinism_same_seed(self):
        a = run_scenario(tiny(seed=11))
        b = run_scenario(tiny(seed=11))
        assert a.pdr == b.pdr
        assert a.events_executed == b.events_executed
        assert (a.mean_delay_s == b.mean_delay_s) or (
            math.isnan(a.mean_delay_s) and math.isnan(b.mean_delay_s)
        )

    def test_different_seed_differs(self):
        a = run_scenario(tiny(seed=11))
        b = run_scenario(tiny(seed=12))
        # flows differ, so traffic volume or routing activity must differ
        assert (
            a.events_executed != b.events_executed
            or a.totals != b.totals
        )

    def test_as_dict_keys(self):
        r = run_scenario(tiny())
        d = r.as_dict()
        assert {"pdr", "mean_delay_s", "throughput_bps", "jain_fairness"} <= set(d)

    def test_replicate_summary(self):
        results, summary = replicate(tiny(), n_runs=2)
        assert len(results) == 2
        assert results[0].config.seed == 3
        assert results[1].config.seed == 4
        assert summary["pdr"].n == 2

    def test_replicate_validation(self):
        with pytest.raises(ValueError):
            replicate(tiny(), n_runs=0)


class TestSweep:
    def test_grid_of_points(self):
        points = sweep(
            tiny(sim_time_s=6.0),
            protocols=["aodv", "oracle"],
            values=[1, 2],
            apply=lambda c, v: replace(c, n_flows=v),
            n_runs=1,
        )
        assert len(points) == 4
        assert {(p.protocol, p.value) for p in points} == {
            ("aodv", 1), ("aodv", 2), ("oracle", 1), ("oracle", 2)
        }
        assert all(0.0 <= p.mean("pdr") <= 1.0 for p in points)
        assert all(p.ci("pdr") == 0.0 for p in points)  # single run


class TestCache:
    def test_key_stability(self):
        a = cache_key("x", {"p": 1, "q": "a"})
        b = cache_key("x", {"q": "a", "p": 1})
        assert a == b

    def test_key_sensitivity(self):
        assert cache_key("x", {"p": 1}) != cache_key("x", {"p": 2})

    def test_cached_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return {"v": 42}

        assert cached("t", {"p": 1}, compute) == {"v": 42}
        assert cached("t", {"p": 1}, compute) == {"v": 42}
        assert len(calls) == 1  # second call hit the cache

    def test_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = []
        for _ in range(2):
            cached("t", {"p": 1}, lambda: calls.append(1) or 1)
        assert len(calls) == 2


class TestStorm:
    def test_blind_reaches_most(self):
        from repro.experiments.storm import run_storm

        r = run_storm(policy="blind", n_nodes=15, n_floods=3, seed=2)
        assert r["reachability"] > 0.8
        assert r["saved_rebroadcast_ratio"] <= 0.05

    def test_gossip_saves_rebroadcasts(self):
        from repro.experiments.storm import run_storm

        blind = run_storm(policy="blind", n_nodes=20, n_floods=3, seed=2)
        gossip = run_storm(policy="gossip", n_nodes=20, n_floods=3, seed=2)
        assert gossip["rebroadcasts"] < blind["rebroadcasts"]

    def test_unknown_policy(self):
        from repro.experiments.storm import run_storm

        with pytest.raises(ValueError):
            run_storm(policy="quantum")


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table2" in out

    def test_table1_renders(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Two-ray ground" in out

    def test_unknown_figure_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--figure", "fig99"])
