"""Tests for the run CLI and the topology renderer."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.topology.placement import grid_positions
from repro.topology.render import render_topology


class TestRenderTopology:
    def test_basic_markers(self):
        pos = grid_positions(3, 3, 100.0)
        out = render_topology(
            pos, gateways=[4], sources=[0], destinations=[8]
        )
        assert "G" in out and "s" in out and "d" in out and "o" in out
        assert "G=gateway" in out

    def test_gateway_wins_conflicts(self):
        pos = np.array([[0.0, 0.0], [0.0, 0.0], [100.0, 100.0]])
        out = render_topology(pos, gateways=[1], width=10, height=5)
        assert "G" in out

    def test_show_ids(self):
        pos = grid_positions(2, 2, 100.0)
        out = render_topology(pos, show_ids=True, width=12, height=6)
        for digit in "0123":
            assert digit in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_topology(np.empty((0, 2)))
        with pytest.raises(ValueError):
            render_topology(grid_positions(2, 2), width=4, height=2)

    def test_single_node(self):
        out = render_topology(np.array([[5.0, 5.0]]), width=10, height=5)
        assert "o" in out


class TestRunCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.protocol == "nlr"
        assert args.grid == "5x5"

    def test_run_small_scenario(self, capsys):
        rc = main([
            "--protocol", "aodv", "--grid", "3x3", "--flows", "2",
            "--rate", "5", "--time", "8", "--warmup", "1", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pdr" in out
        assert "aodv on 9 nodes" in out

    def test_map_and_loads_flags(self, capsys):
        rc = main([
            "--protocol", "oracle", "--grid", "3x3", "--flows", "2",
            "--rate", "5", "--time", "8", "--warmup", "1",
            "--map", "--loads",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "o=router" in out
        assert "forwarding load" in out

    def test_bad_grid_errors(self, capsys):
        rc = main(["--grid", "5by5", "--time", "6", "--warmup", "1"])
        assert rc == 2
        assert "bad --grid" in capsys.readouterr().err

    def test_bad_protocol_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--protocol", "ospf"])
