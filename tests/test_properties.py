"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import mean_ci
from repro.core.load_metric import LoadEstimator
from repro.core.cross_layer import LoadSample
from repro.core.forwarding_policy import LoadAdaptiveGossip
from repro.mac.busy_monitor import BusyMonitor
from repro.mac.queue import DropTailQueue
from repro.metrics.fairness import jain_index
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.units import db_to_linear, dbm_to_watt, linear_to_db, watt_to_dbm


# ---------------------------------------------------------------------- #
# Engine ordering
# ---------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.integers(min_value=-3, max_value=3),
        ),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_engine_executes_in_nondecreasing_time_priority_order(events):
    sim = Simulator()
    fired: list[tuple[float, int, int]] = []
    for k, (t, prio) in enumerate(events):
        sim.schedule(t, lambda t=t, p=prio, k=k: fired.append((t, p, k)),
                     priority=prio)
    sim.run()
    assert len(fired) == len(events)
    # lexicographic (time, priority, insertion) order must hold
    keys = [(t, p, k) for (t, p, k) in fired]
    # insertion counter k is globally unique but only FIFO *within* equal
    # (time, priority); check pairwise ordering on (time, priority) and
    # FIFO among exact ties.
    for a, b in zip(keys, keys[1:]):
        assert (a[0], a[1]) <= (b[0], b[1])
        if (a[0], a[1]) == (b[0], b[1]):
            assert a[2] < b[2]


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=0, max_size=50))
@settings(max_examples=40, deadline=None)
def test_engine_clock_never_goes_backwards(times):
    sim = Simulator()
    observed: list[float] = []
    for t in times:
        sim.schedule(t, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)


# ---------------------------------------------------------------------- #
# Queue invariants
# ---------------------------------------------------------------------- #
@given(st.lists(st.sampled_from(["push", "pop"]), max_size=300),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_queue_conservation_and_bounds(ops, capacity):
    q = DropTailQueue(Simulator(), capacity=capacity)
    seq = 0
    popped: list[int] = []
    for op in ops:
        if op == "push":
            q.push(seq)
            seq += 1
        else:
            item = q.pop()
            if item is not None:
                popped.append(item)
    # bounded
    assert 0 <= len(q) <= capacity
    # conservation: enqueued = dequeued + still-queued; drops accounted
    assert q.enqueued == q.dequeued + len(q)
    assert q.enqueued + q.dropped == seq
    # FIFO: popped items strictly increasing
    assert popped == sorted(popped)
    assert 0.0 <= q.occupancy_ratio <= 1.0


# ---------------------------------------------------------------------- #
# Busy monitor
# ---------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(st.floats(min_value=0.001, max_value=0.5), st.booleans()),
        min_size=1, max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_busy_ratio_always_in_unit_interval(transitions):
    sim = Simulator()
    m = BusyMonitor(sim, window_s=1.0)
    t = 0.0
    for gap, busy in transitions:
        t += gap
        sim.schedule(t, m.on_medium_state, busy)
    sim.schedule(t + 0.01, lambda: None)
    sim.run()
    assert 0.0 <= m.busy_ratio() <= 1.0


# ---------------------------------------------------------------------- #
# Load estimator
# ---------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1, max_size=100,
    ),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_load_estimator_stays_in_unit_interval(samples, beta, alpha):
    e = LoadEstimator(queue_weight=beta, alpha_ewma=alpha)
    for q, b in samples:
        e.on_sample(LoadSample(time=0.0, queue_occupancy=q, busy_ratio=b))
        assert 0.0 <= e.load() <= 1.0
    # EWMA of values in [0,1] stays within the sample hull
    qs = [q for q, _ in samples]
    bs = [b for _, b in samples]
    assert min(qs) - 1e-9 <= e.queue_load <= max(qs) + 1e-9
    assert min(bs) - 1e-9 <= e.busy_load <= max(bs) + 1e-9


# ---------------------------------------------------------------------- #
# Forwarding probability
# ---------------------------------------------------------------------- #
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=80, deadline=None)
def test_adaptive_probability_bounds(load, p_min, gamma):
    p_max = 1.0
    policy = LoadAdaptiveGossip(
        np.random.default_rng(0), p_max=p_max, p_min=min(p_min, p_max),
        gamma=gamma,
    )
    p = policy.probability(load)
    assert policy.p_min <= p <= p_max


# ---------------------------------------------------------------------- #
# Fairness index
# ---------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=64))
@settings(max_examples=80, deadline=None)
def test_jain_bounds_property(values):
    j = jain_index(values)
    n = len(values)
    assert 1.0 / n - 1e-9 <= j <= 1.0 + 1e-9


@given(st.floats(min_value=0.01, max_value=1e5), st.integers(2, 32))
@settings(max_examples=40, deadline=None)
def test_jain_scale_invariant(scale, n):
    rng = np.random.default_rng(1)
    x = rng.uniform(0.1, 5.0, size=n)
    assert jain_index(x) == pytest.approx(jain_index(x * scale), rel=1e-9)


# ---------------------------------------------------------------------- #
# Unit conversions
# ---------------------------------------------------------------------- #
@given(st.floats(min_value=-120.0, max_value=60.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_dbm_watt_roundtrip_property(dbm):
    assert watt_to_dbm(dbm_to_watt(dbm)) == pytest.approx(dbm, abs=1e-9)


@given(st.floats(min_value=1e-12, max_value=1e12))
@settings(max_examples=80, deadline=None)
def test_db_linear_roundtrip_property(ratio):
    assert db_to_linear(linear_to_db(ratio)) == pytest.approx(ratio, rel=1e-9)


# ---------------------------------------------------------------------- #
# RNG stream independence
# ---------------------------------------------------------------------- #
@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_rng_streams_reproducible(seed, name):
    a = RandomStreams(seed).stream(name).random(4)
    b = RandomStreams(seed).stream(name).random(4)
    assert np.array_equal(a, b)


# ---------------------------------------------------------------------- #
# Confidence intervals
# ---------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_ci_contains_mean_and_is_symmetric(values):
    ci = mean_ci(values)
    assert ci.low <= ci.mean <= ci.high
    assert ci.high - ci.mean == pytest.approx(ci.mean - ci.low, rel=1e-9,
                                              abs=1e-12)
    assert ci.half_width >= 0.0


# ---------------------------------------------------------------------- #
# Packet TTL / hop invariant through a chain of AODV nodes
# ---------------------------------------------------------------------- #
@given(st.integers(min_value=2, max_value=8))
@settings(max_examples=10, deadline=None)
def test_hops_equal_chain_length(n):
    from repro.net.aodv import AodvConfig, AodvRouting
    from tests.conftest import chain_adjacency, make_perfect_net

    sim, stacks = make_perfect_net(
        chain_adjacency(n),
        lambda nid, streams: AodvRouting(
            AodvConfig(hello_enabled=False), streams.stream(f"r{nid}")
        ),
    )
    got = []
    stacks[n - 1].receive_callback = got.append
    stacks[0].send_data(dst=n - 1, payload_bytes=10)
    sim.run(until=5.0)
    assert len(got) == 1
    assert got[0].hops == n - 1
