"""System-level tracing: a traced scenario records every layer."""

from repro.experiments.scenario import ScenarioConfig, build_network


def test_traced_scenario_records_all_layers():
    config = ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=8.0, warmup_s=1.0, seed=13, trace=True,
    )
    net = build_network(config)
    net.start()
    net.sim.run(until=config.sim_time_s)
    net.stop()
    tracer = net.tracer
    assert len(tracer) > 0
    categories = {r.category for r in tracer}
    assert {"phy", "mac", "net", "app"} <= categories
    # MAC data transmissions and PHY receptions were both traced
    assert tracer.count(category="mac", event="data_tx") > 0
    assert tracer.count(category="phy", event="rx_ok") > 0
    # routing traced discovery activity
    assert tracer.count(category="net", event="rreq_originate") >= 2
    # app deliveries traced at the destination nodes
    assert tracer.count(category="app", event="deliver") > 0
    # records are time-ordered per the engine's execution order
    times = [r.time for r in tracer]
    assert times == sorted(times)


def test_untraced_scenario_records_nothing():
    config = ScenarioConfig(
        protocol="aodv", grid_nx=3, grid_ny=3, n_flows=1,
        sim_time_s=5.0, warmup_s=1.0, seed=13, trace=False,
    )
    net = build_network(config)
    net.start()
    net.sim.run(until=config.sim_time_s)
    net.stop()
    assert len(net.tracer) == 0
