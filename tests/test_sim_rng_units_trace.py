"""Unit tests for RNG streams, unit conversions, and tracing."""

import math

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.sim import units


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("x").integers(0, 1000, size=10)
        b = RandomStreams(7).stream("x").integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        rs = RandomStreams(7)
        a = rs.stream("x").integers(0, 10**9, size=8)
        b = rs.stream("y").integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_stream_memoised(self):
        rs = RandomStreams(1)
        assert rs.stream("a") is rs.stream("a")

    def test_order_independent(self):
        rs1 = RandomStreams(3)
        rs1.stream("a")
        v1 = rs1.stream("b").random()
        rs2 = RandomStreams(3)
        v2 = rs2.stream("b").random()  # created first this time
        assert v1 == v2

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_names_listing(self):
        rs = RandomStreams(0)
        rs.stream("b")
        rs.stream("a")
        assert rs.names() == ["a", "b"]


class TestUnits:
    def test_dbm_watt_roundtrip(self):
        for dbm in [-90.0, -30.0, 0.0, 20.0]:
            assert units.watt_to_dbm(units.dbm_to_watt(dbm)) == pytest.approx(dbm)

    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_db_linear_roundtrip(self):
        assert units.db_to_linear(units.linear_to_db(42.0)) == pytest.approx(42.0)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            units.watt_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_thermal_noise_80211b(self):
        p = units.thermal_noise_watt(22e6, noise_figure_db=10.0)
        assert -91.0 < units.watt_to_dbm(p) < -90.0

    def test_thermal_noise_validates(self):
        with pytest.raises(ValueError):
            units.thermal_noise_watt(0.0)
        with pytest.raises(ValueError):
            units.thermal_noise_watt(22e6, temperature_k=0.0)

    def test_airtime(self):
        assert units.airtime(11_000_000, 11e6) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            units.airtime(100, 0.0)
        with pytest.raises(ValueError):
            units.airtime(-1, 1e6)

    def test_bits_bytes(self):
        assert units.bits_to_bytes(16) == 2
        assert units.bytes_to_bits(3) == 24
        with pytest.raises(ValueError):
            units.bits_to_bytes(9)
        with pytest.raises(ValueError):
            units.bytes_to_bits(-1)

    def test_isclose_time(self):
        assert units.isclose_time(1.0, 1.0 + 1e-13)
        assert not units.isclose_time(1.0, 1.0 + 1e-9)


class TestTracer:
    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(0.0, "mac", 1, "tx")
        assert len(t) == 0

    def test_enabled_records(self):
        t = Tracer(enabled=True)
        t.record(1.0, "mac", 1, "tx", dst=2)
        t.record(2.0, "phy", 1, "rx")
        assert len(t) == 2
        assert t.filter(category="mac")[0].details == {"dst": 2}

    def test_category_filtering_at_record_time(self):
        t = Tracer(enabled=True, categories={"mac"})
        t.record(0.0, "phy", 1, "x")
        t.record(0.0, "mac", 1, "y")
        assert len(t) == 1

    def test_filter_and_count(self):
        t = Tracer(enabled=True)
        for node in (1, 1, 2):
            t.record(0.0, "net", node, "fwd")
        assert t.count(node=1) == 2
        assert t.count(event="fwd", node=2) == 1
        assert t.count(category="nope") == 0

    def test_max_records_drops(self):
        t = Tracer(enabled=True, max_records=2)
        for i in range(5):
            t.record(float(i), "x", 0, "e")
        assert len(t) == 2
        assert t.dropped == 3

    def test_sink_invoked(self):
        got = []
        t = Tracer(enabled=True, sink=got.append)
        t.record(0.0, "mac", 3, "tx")
        assert len(got) == 1
        assert got[0].node == 3

    def test_clear(self):
        t = Tracer(enabled=True)
        t.record(0.0, "a", 0, "e")
        t.clear()
        assert len(t) == 0

    def test_str_rendering(self):
        t = Tracer(enabled=True)
        t.record(1.5, "mac", 2, "tx", dst=7)
        s = str(list(t)[0])
        assert "mac" in s and "tx" in s and "dst=7" in s
