"""Tests for the radio energy model."""

import math

import pytest

from repro.experiments.scenario import ScenarioConfig, build_network
from repro.phy.energy import EnergyConfig, EnergyMeter, attach_energy_meters
from repro.phy.radio import RadioState


def run_metered(rate=20.0, energy=None, kill=False, sim_time=10.0, **kw):
    config = ScenarioConfig(
        protocol="aodv", grid_nx=3, grid_ny=3, n_flows=2,
        flow_rate_pps=rate, sim_time_s=sim_time, warmup_s=1.0, seed=5, **kw,
    )
    net = build_network(config)
    meters = attach_energy_meters(net, energy, kill_on_depletion=kill)
    net.start()
    net.sim.run(until=config.sim_time_s)
    net.stop()
    return net, meters


class TestEnergyConfig:
    def test_draws(self):
        c = EnergyConfig(tx_w=2.0, rx_w=1.0, idle_w=0.5)
        assert c.draw_w(RadioState.TX) == 2.0
        assert c.draw_w(RadioState.RX) == 1.0
        assert c.draw_w(RadioState.IDLE) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyConfig(tx_w=-1.0)


class TestAccounting:
    def test_idle_only_node_burns_idle_power(self):
        # A meter on a radio that never transmits integrates idle draw.
        from repro.phy.channel import Channel
        from repro.phy.propagation import TwoRayGround
        from repro.phy.radio import PhyConfig, Radio
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        sim = Simulator()
        ch = Channel(sim, TwoRayGround())
        radio = Radio(sim, 0, PhyConfig(), RandomStreams(0).stream("r"))
        ch.register(radio, (0, 0))
        meter = EnergyMeter(sim, radio, EnergyConfig(idle_w=0.5))
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert meter.consumed_j() == pytest.approx(5.0)

    def test_total_is_sum_of_states(self):
        net, meters = run_metered()
        for meter in meters.values():
            split = meter.consumed_by_state()
            assert sum(split.values()) == pytest.approx(meter.consumed_j())

    def test_active_nodes_burn_more_than_idle_profile(self):
        net, meters = run_metered()
        idle_only = 0.74 * 10.0
        assert max(m.consumed_j() for m in meters.values()) > idle_only
        # every node is at least idle-draining (same sim duration)
        assert min(m.consumed_j() for m in meters.values()) >= idle_only * 0.99

    def test_comm_only_profile(self):
        cfg = EnergyConfig(idle_w=0.0)
        net, meters = run_metered(energy=cfg)
        # with idle zeroed, totals reflect activity: forwarding-heavy nodes
        # burn more than leaf nodes
        totals = sorted(m.consumed_j() for m in meters.values())
        assert totals[-1] > totals[0]
        assert totals[0] < 2.0  # a quiet corner node does little comm

    def test_infinite_battery_never_depletes(self):
        net, meters = run_metered()
        assert all(m.alive for m in meters.values())
        assert all(m.remaining_j() == math.inf for m in meters.values())


class TestDepletion:
    def test_battery_depletes_and_reports_time(self):
        cfg = EnergyConfig(idle_w=0.5, capacity_j=2.0)
        net, meters = run_metered(energy=cfg, sim_time=10.0)
        # idle draw alone (0.5 W) empties 2 J in ≈4 s
        m = meters[0]
        assert not m.alive
        assert m.depleted_at == pytest.approx(4.0, abs=1.5)
        assert m.remaining_j() == 0.0

    def test_kill_on_depletion_crashes_node(self):
        cfg = EnergyConfig(idle_w=0.0, capacity_j=0.4)  # comm-only, tiny
        net, meters = run_metered(energy=cfg, kill=True, rate=40.0,
                                  sim_time=15.0)
        dead = [nid for nid, m in meters.items() if not m.alive]
        assert dead, "no node depleted its battery"
        for nid in dead:
            assert not net.stacks[nid].mac.radio.powered

    def test_depletion_callback_fires_once(self):
        from repro.phy.channel import Channel
        from repro.phy.propagation import TwoRayGround
        from repro.phy.radio import PhyConfig, Radio
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        sim = Simulator()
        ch = Channel(sim, TwoRayGround())
        radio = Radio(sim, 0, PhyConfig(), RandomStreams(0).stream("r"))
        ch.register(radio, (0, 0))
        fired = []
        EnergyMeter(
            sim, radio, EnergyConfig(idle_w=1.0, capacity_j=3.0),
            on_depleted=lambda: fired.append(sim.now),
        )
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert fired == [pytest.approx(3.0)]


class TestAttachment:
    def test_perfect_mac_rejected(self):
        config = ScenarioConfig(
            protocol="aodv", grid_nx=3, grid_ny=3, n_flows=2,
            sim_time_s=5.0, warmup_s=1.0, mac="perfect",
        )
        net = build_network(config)
        with pytest.raises(ValueError):
            attach_energy_meters(net)
