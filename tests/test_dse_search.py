"""Evolutionary search + screening: determinism, resume, parallelism.

These are the acceptance tests for the DSE reproducibility guarantees:

* a fixed-seed search is deterministic across fresh runs;
* killing a search mid-generation and resuming yields a byte-identical
  final population (``population_hash``), including when some cell
  checkpoints were lost;
* ``workers=2`` produces the same bytes as serial execution;
* surrogate pruning is fully audited (pruned ⇔ predicted < threshold,
  pruned candidates are never simulated) and does not change the
  reported best on a screened design.

The base scenario is deliberately tiny (3×3 grid, 6 simulated seconds,
~60 ms per cell) so dozens of real simulations stay cheap.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dse import (
    ContinuousDim,
    EvolutionarySearch,
    IntegerDim,
    ParameterSpace,
    ScreenSettings,
    SearchSettings,
    point_key,
    run_screening,
)
from repro.exec.policy import ExecPolicy
from repro.experiments.scenario import ScenarioConfig


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path


def tiny_base() -> ScenarioConfig:
    return ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=6.0, warmup_s=1.0, seed=3,
    )


def loaded_base() -> ScenarioConfig:
    # Enough offered load that different parameter points actually score
    # differently (the unloaded grid delivers everything everywhere).
    return ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=4,
        flow_rate_pps=20.0, sim_time_s=6.0, warmup_s=1.0, seed=3,
    )


def tiny_space() -> ParameterSpace:
    return ParameterSpace(
        "tiny",
        [
            ContinuousDim("gamma", "nlr.gamma", 0.0, 1.0),
            ContinuousDim("p_min", "nlr.p_min", 0.1, 0.8),
            IntegerDim("rerr", "aodv.rerr_rate_limit_per_s", 2, 20),
        ],
    )


def tiny_settings(**over) -> SearchSettings:
    kw = dict(
        population=6, generations=3, seed=5, elites=2,
        surrogate_min_train=6, oversample=2.0,
    )
    kw.update(over)
    return SearchSettings(**kw)


def run_search(out_dir: Path | None = None, resume: bool = False, **over):
    search = EvolutionarySearch(
        tiny_space(), tiny_base(), tiny_settings(**over), out_dir=out_dir
    )
    return search.run(resume=resume)


class TestDeterminism:
    def test_fresh_runs_byte_identical(self, tmp_path, monkeypatch):
        hashes = []
        for d in ("a", "b"):
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / d))
            hashes.append(run_search().final_population_hash)
        assert hashes[0] == hashes[1]

    def test_different_seed_differs(self, isolated_cache):
        a = run_search()
        b = run_search(seed=6)
        assert a.final_population_hash != b.final_population_hash

    def test_workers_two_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = run_search()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        search = EvolutionarySearch(
            tiny_space(), tiny_base(), tiny_settings(),
            policy=ExecPolicy(workers=2),
        )
        parallel = search.run()
        assert parallel.final_population_hash == serial.final_population_hash

    def test_result_views(self, isolated_cache):
        res = run_search()
        assert res.simulations_run > 0
        assert res.best in res.archive
        front = res.pareto()
        assert front and set(map(id, front)) <= set(map(id, res.archive))
        assert len(res.final_population) == 6


class TestResume:
    def test_extend_resume_matches_straight_run(self, isolated_cache, tmp_path):
        straight = run_search(out_dir=tmp_path / "straight")
        short = run_search(out_dir=tmp_path / "resumed", generations=2)
        assert len(short.generations) == 2
        resumed = run_search(
            out_dir=tmp_path / "resumed", generations=3, resume=True
        )
        assert resumed.final_population_hash == straight.final_population_hash
        # Replayed generations never touch the executor again.
        assert resumed.simulations_run < straight.simulations_run

    def test_kill_mid_generation_resume(self, isolated_cache, tmp_path):
        out = tmp_path / "run"
        straight = run_search(out_dir=out)
        state_path = out / "state.json"
        state = json.loads(state_path.read_text())

        # Emulate a kill during generation 1: only generation 0 made it to
        # the state file, and some of the in-flight cells' checkpoints are
        # gone too.
        state["generations"] = state["generations"][:1]
        state_path.write_text(json.dumps(state))
        cells = sorted((tmp_path / "cache" / "cells").glob("*.json"))
        assert cells, "expected per-cell checkpoints on disk"
        for ckpt in cells[::3]:
            ckpt.unlink()

        resumed = run_search(out_dir=out, resume=True)
        assert resumed.final_population_hash == straight.final_population_hash
        assert [g.index for g in resumed.generations] == [0, 1, 2]

    def test_fully_recorded_resume_runs_nothing(self, isolated_cache, tmp_path):
        out = tmp_path / "run"
        straight = run_search(out_dir=out)
        resumed = run_search(out_dir=out, resume=True)
        assert resumed.simulations_run == 0
        assert resumed.final_population_hash == straight.final_population_hash

    def test_resume_rejects_redefined_search(self, isolated_cache, tmp_path):
        out = tmp_path / "run"
        run_search(out_dir=out, generations=1)
        with pytest.raises(ValueError, match="differs from the requested"):
            run_search(out_dir=out, resume=True, seed=99)

    def test_resume_without_state_starts_fresh(self, isolated_cache, tmp_path):
        res = run_search(out_dir=tmp_path / "new", resume=True)
        assert len(res.generations) == 3


class TestSurrogateInSearch:
    def test_prune_log_is_a_faithful_audit(self, isolated_cache, tmp_path):
        res = run_search(out_dir=tmp_path / "run", prune_quantile=0.4)
        logs = [d for g in res.generations for d in g.prune_log]
        assert logs, "surrogate should have been consulted after gen 0"
        for d in logs:
            assert d.pruned == (d.predicted < d.threshold) or not d.pruned
        # Pruned candidates were never simulated: they are absent from the
        # generation they were proposed for.
        for g in res.generations:
            pop_keys = {e.key for e in g.population}
            for d in g.prune_log:
                if d.pruned:
                    assert point_key(d.point) not in pop_keys
        assert res.evaluations_pruned == sum(1 for d in logs if d.pruned)

    def test_candidate_stream_invariant_to_surrogate(
        self, tmp_path, monkeypatch
    ):
        # With pruning off, every generation still draws the same stream —
        # generation 0 (pre-surrogate) must be identical either way.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "on"))
        on = run_search(out_dir=tmp_path / "s-on")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "off"))
        off = run_search(out_dir=tmp_path / "s-off", surrogate=False)
        assert [e.point for e in on.generations[0].population] == [
            e.point for e in off.generations[0].population
        ]
        assert off.evaluations_pruned == 0


class TestScreening:
    def space2(self) -> ParameterSpace:
        return ParameterSpace(
            "screen2",
            [
                ContinuousDim("gamma", "nlr.gamma", 0.0, 1.0),
                ContinuousDim("qw", "nlr.queue_weight", 0.0, 1.0),
            ],
        )

    def test_pruned_screening_same_best_as_full(self, tmp_path, monkeypatch):
        base = loaded_base()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "full"))
        full = run_screening(
            self.space2(), base, ScreenSettings(levels=4, surrogate=False)
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pruned"))
        pruned = run_screening(
            self.space2(), base,
            ScreenSettings(levels=4, prune_quantile=0.25),
        )
        assert full.design_size == pruned.design_size == 16
        assert pruned.evaluations_pruned > 0
        assert len(pruned.evaluated) == 16 - pruned.evaluations_pruned
        # Pruning skipped only predictably poor cells; the winner and its
        # score are untouched.
        assert pruned.best.key == full.best.key
        assert pruned.best.fitness == full.best.fitness
        # Full run differentiates points (the loaded base matters).
        assert len({e.fitness for e in full.evaluated}) > 1

    def test_screening_writes_state(self, isolated_cache, tmp_path):
        out = tmp_path / "screen"
        res = run_screening(
            self.space2(), tiny_base(),
            ScreenSettings(levels=3, surrogate=False), out_dir=out,
        )
        state = json.loads((out / "state.json").read_text())
        assert state["kind"] == "screen"
        assert state["design_size"] == 9
        assert len(state["generations"][0]["population"]) == len(res.evaluated)
