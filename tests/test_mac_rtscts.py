"""Tests for RTS/CTS virtual carrier sense (NAV)."""

import pytest

from repro.mac.csma import CsmaMac, MacConfig
from repro.mac.mac_types import BROADCAST_MAC, MacFrame, MacFrameKind
from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_macs(positions, mac_config, seed=1, phy_config=None):
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False)
    rs = RandomStreams(seed)
    macs = []
    for i, pos in enumerate(positions):
        radio = Radio(sim, i, phy_config or PhyConfig(), rs.stream(f"phy{i}"))
        ch.register(radio, pos)
        macs.append(CsmaMac(sim, radio, mac_config, rs.stream(f"mac{i}")))
    return sim, macs


RTS_ON = dict(rts_cts_enabled=True, queue_capacity=100)


class TestHandshake:
    def test_unicast_uses_rts_cts(self):
        sim, macs = make_macs([(0, 0), (150, 0)], MacConfig(**RTS_ON))
        got = []
        macs[1].rx_upper_callback = lambda p, s, i: got.append(p)
        ok = []
        macs[0].send_done_callback = lambda p, d, s: ok.append(s)
        macs[0].send("pkt", 1, 512)
        sim.run(until=0.5)
        assert got == ["pkt"] and ok == [True]
        assert macs[0].rts_tx == 1
        assert macs[1].cts_tx == 1
        assert macs[1].ack_tx == 1

    def test_broadcast_skips_rts(self):
        sim, macs = make_macs([(0, 0), (150, 0)], MacConfig(**RTS_ON))
        macs[0].send("bc", BROADCAST_MAC, 256)
        sim.run(until=0.5)
        assert macs[0].rts_tx == 0

    def test_threshold_bypasses_small_frames(self):
        cfg = MacConfig(rts_cts_enabled=True, rts_threshold_bytes=256)
        sim, macs = make_macs([(0, 0), (150, 0)], cfg)
        macs[0].send("small", 1, 64)
        macs[0].send("big", 1, 512)
        sim.run(until=0.5)
        assert macs[0].rts_tx == 1  # only the 512 B frame

    def test_cts_timeout_retries_then_drops(self):
        cfg = MacConfig(rts_cts_enabled=True, retry_limit=2)
        sim, macs = make_macs([(0, 0), (2000, 0)], cfg)  # out of range
        ok = []
        macs[0].send_done_callback = lambda p, d, s: ok.append(s)
        macs[0].send("pkt", 1, 512)
        sim.run(until=2.0)
        assert ok == [False]
        assert macs[0].rts_tx == 3  # initial + 2 retries
        assert macs[0].data_tx == 0  # data never went out without CTS

    def test_disabled_by_default(self):
        sim, macs = make_macs([(0, 0), (150, 0)], MacConfig())
        macs[0].send("pkt", 1, 512)
        sim.run(until=0.5)
        assert macs[0].rts_tx == 0 and macs[1].cts_tx == 0


class TestNav:
    def test_overhearer_sets_nav_from_rts(self):
        sim, macs = make_macs(
            [(0, 0), (150, 0), (80, 100)], MacConfig(**RTS_ON)
        )
        macs[0].send("pkt", 1, 512)
        # run until just after the RTS lands at the overhearer
        sim.run(until=0.02)
        assert macs[2].nav_defers >= 1

    def test_nav_blocks_contention_until_exchange_ends(self):
        sim, macs = make_macs(
            [(0, 0), (150, 0), (80, 100)], MacConfig(**RTS_ON)
        )
        got = []
        macs[1].rx_upper_callback = lambda p, s, i: got.append((s, p))
        macs[0].send("a", 1, 512)
        macs[2].send("c", 1, 512)
        sim.run(until=1.0)
        # both exchanges complete despite contention
        assert {s for s, _ in got} == {0, 2}

    def test_receiver_with_active_nav_stays_silent(self):
        sim, macs = make_macs([(0, 0), (150, 0)], MacConfig(**RTS_ON))
        # Artificially arm the receiver's NAV for a long period.
        macs[1]._set_nav(0.05)
        rts = MacFrame(kind=MacFrameKind.RTS, src=0, dst=1, seq=0,
                       duration_s=0.002)
        from repro.phy.frame import RxInfo

        macs[1]._on_phy_rx(rts, RxInfo(1e-9, 100.0, 0.0, 0.0, 0))
        sim.run(until=0.01)
        assert macs[1].cts_tx == 0

    def test_hidden_terminal_collisions_hit_rts_not_data(self):
        # Senders mutually deaf (CS shrunk to RX range), shared receiver.
        # The textbook RTS/CTS benefit: a collision costs a 20-byte RTS
        # instead of a 546-byte DATA frame, so DATA frames go on air
        # exactly once per delivered packet while retries burn RTSes.
        hidden_phy = PhyConfig(cs_threshold_w=PhyConfig().rx_threshold_w)

        def run(rts):
            cfg = MacConfig(rts_cts_enabled=rts, queue_capacity=100)
            sim, macs = make_macs(
                [(0, 0), (200, 0), (400, 0)], cfg, seed=4,
                phy_config=hidden_phy,
            )
            got = []
            macs[1].rx_upper_callback = lambda p, s, i: got.append(p)
            for k in range(25):
                macs[0].send(f"a{k}", 1, 512)
                macs[2].send(f"c{k}", 1, 512)
            sim.run(until=6.0)
            data_tx = macs[0].data_tx + macs[2].data_tx
            retries = macs[0].retries_total + macs[2].retries_total
            return len(got), data_tx, retries

        delivered_off, data_off, retries_off = run(False)
        delivered_on, data_on, retries_on = run(True)
        assert delivered_on >= delivered_off - 1
        # without RTS every retry re-airs the full DATA frame ...
        assert data_off == 50 + retries_off
        # ... with RTS the DATA is sent only after a granted CTS.
        assert data_on == 50

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            MacFrame(kind=MacFrameKind.RTS, src=0, dst=BROADCAST_MAC, seq=0)
        with pytest.raises(ValueError):
            MacFrame(kind=MacFrameKind.DATA, src=0, dst=1, seq=0,
                     duration_s=-1.0)

    def test_rts_cts_sizes(self):
        rts = MacFrame(kind=MacFrameKind.RTS, src=0, dst=1, seq=0)
        cts = MacFrame(kind=MacFrameKind.CTS, src=1, dst=0, seq=0)
        assert rts.size_bytes == 20
        assert cts.size_bytes == 14


class TestEndToEndWithRouting:
    def test_scenario_runs_with_rts(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import ScenarioConfig

        r = run_scenario(
            ScenarioConfig(
                protocol="aodv", grid_nx=3, grid_ny=3, n_flows=2,
                mac_config=MacConfig(rts_cts_enabled=True),
                sim_time_s=10.0, warmup_s=2.0, seed=3,
            )
        )
        assert r.pdr > 0.95
