"""Durability of the campaign progress JSONL log.

The log is the campaign's post-mortem record: after *any* crash —
including a hard ``os._exit`` mid-campaign — it must re-parse as whole
JSON lines covering every event logged before death.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec.progress import ProgressReporter
from repro.exec.task import Campaign, Task
from repro.experiments.scenario import ScenarioConfig


REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


class _Outcome:
    """Minimal TaskOutcome stand-in for driving the reporter directly."""

    def __init__(self, task, status="ok", source="run"):
        self.task = task
        self.status = status
        self.source = source
        self.kind = "error" if status != "ok" else None
        self.attempts = 1
        self.duration_s = 0.01
        self.result = None
        self.error = None


def make_campaign(n=3):
    configs = [
        ScenarioConfig(seed=s, sim_time_s=2.0, warmup_s=0.5, n_flows=1)
        for s in range(1, n + 1)
    ]
    return Campaign("durability", [Task(c) for c in configs])


class TestLogDurability:
    def test_every_event_flushed_immediately(self, tmp_path):
        """Events are readable from disk *before* campaign_end closes the log."""
        log = tmp_path / "run.jsonl"
        reporter = ProgressReporter(
            stream=open(os.devnull, "w"), log_path=log
        )
        campaign = make_campaign(2)
        reporter.campaign_started(campaign, workers=1)
        reporter.task_finished(_Outcome(campaign.tasks[0]))
        # No campaign_end yet: per-event flush means the lines are on disk.
        lines = [json.loads(ln) for ln in log.read_text().splitlines()]
        assert [ln["event"] for ln in lines] == ["campaign_start", "task_done"]
        reporter.task_finished(_Outcome(campaign.tasks[1], status="error"))
        reporter.campaign_finished(None)
        lines = [json.loads(ln) for ln in log.read_text().splitlines()]
        assert lines[-1]["event"] == "campaign_end"
        assert reporter._log_fh is None  # closed (and fsynced) at the end

    def test_reporter_reusable_after_campaign_end(self, tmp_path):
        log = tmp_path / "run.jsonl"
        reporter = ProgressReporter(stream=open(os.devnull, "w"), log_path=log)
        for _ in range(2):
            campaign = make_campaign(1)
            reporter.campaign_started(campaign, workers=1)
            reporter.task_finished(_Outcome(campaign.tasks[0]))
            reporter.campaign_finished(None)
        events = [
            json.loads(ln)["event"] for ln in log.read_text().splitlines()
        ]
        assert events.count("campaign_start") == 2
        assert events.count("campaign_end") == 2

    def test_log_survives_hard_kill_mid_campaign(self, tmp_path):
        """Kill the campaign process mid-write; the log must re-parse whole.

        ``REPRO_EXEC_FAULT=exit:<seed>`` makes the (serial, in-process)
        worker die with ``os._exit`` when it reaches that seed's cell —
        after earlier cells logged their ``task_done`` events.
        """
        log = tmp_path / "killed.jsonl"
        script = f"""
import sys
sys.path.insert(0, {REPO_SRC!r})
from repro.exec import ExecPolicy, ProgressReporter, run_configs
from repro.experiments.scenario import ScenarioConfig

configs = [
    ScenarioConfig(seed=s, sim_time_s=2.0, warmup_s=0.5, n_flows=1)
    for s in (1, 2, 3)
]
reporter = ProgressReporter(log_path={str(log)!r}, min_interval_s=0.0)
run_configs("kill-test", configs,
            ExecPolicy(workers=1, checkpoint=False, retries=0),
            reporter=reporter)
"""
        env = dict(os.environ, REPRO_EXEC_FAULT="exit:3", PYTHONPATH=REPO_SRC)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode != 0  # the fault killed the process

        # The log must exist and re-parse line-by-line: only whole JSON
        # objects, never a torn tail.
        raw = log.read_text()
        assert raw.endswith("\n")
        lines = [json.loads(ln) for ln in raw.splitlines()]
        events = [ln["event"] for ln in lines]
        assert events[0] == "campaign_start"
        # Cells for seeds 1 and 2 completed (and were flushed) before the
        # seed-3 cell killed the process; campaign_end never happened.
        assert events.count("task_done") == 2
        assert "campaign_end" not in events
        done = [ln for ln in lines if ln["event"] == "task_done"]
        assert all(d["status"] == "ok" for d in done)
