"""Property-based protocol tests against networkx ground truth."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.dsdv import DsdvConfig, DsdvRouting

from tests.conftest import make_perfect_net


def random_connected_adjacency(n: int, extra_edges: int, seed: int):
    """A random connected graph as an adjacency dict (tree + extra edges)."""
    g = nx.random_labeled_tree(n, seed=seed)
    rng_edges = list(nx.non_edges(g))
    rng_edges.sort()
    for k in range(min(extra_edges, len(rng_edges))):
        g.add_edge(*rng_edges[(k * 7919) % len(rng_edges)])
    return {i: sorted(g.neighbors(i)) for i in g.nodes}, g


@given(
    n=st.integers(min_value=3, max_value=10),
    extra=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=12, deadline=None)
def test_dsdv_converges_to_shortest_paths(n, extra, seed):
    adjacency, graph = random_connected_adjacency(n, extra, seed)
    sim, stacks = make_perfect_net(
        adjacency,
        lambda nid, streams: DsdvRouting(
            DsdvConfig(update_interval_s=0.3, route_lifetime_s=5.0),
            streams.stream(f"r{nid}"),
        ),
        seed=seed + 1,
    )
    for s in stacks:
        s.start()
    # enough periods for network-diameter propagation
    sim.run(until=0.5 + 0.35 * n)
    for src_stack in stacks:
        for dst in adjacency:
            if dst == src_stack.node_id:
                continue
            entry = src_stack.routing.route_to(dst)
            assert entry is not None, (src_stack.node_id, dst)
            expected = nx.shortest_path_length(graph, src_stack.node_id, dst)
            # Without weighted settling time (documented simplification),
            # DSDV transiently prefers fresher-seqno routes over shorter
            # ones — the classic route flutter the 1994 paper damps.  The
            # flutter compounds along paths, so the bound is a small
            # additive band over optimal, never below it (no negative
            # cycles / loops).
            assert expected <= entry.metric <= expected + 3


@given(
    n=st.integers(min_value=3, max_value=9),
    extra=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=10, deadline=None)
def test_aodv_path_at_least_shortest(n, extra, seed):
    adjacency, graph = random_connected_adjacency(n, extra, seed)
    sim, stacks = make_perfect_net(
        adjacency,
        lambda nid, streams: AodvRouting(
            AodvConfig(hello_enabled=False), streams.stream(f"r{nid}")
        ),
        seed=seed + 1,
    )
    for s in stacks:
        s.start()
    src, dst = 0, n - 1
    got = []
    stacks[dst].receive_callback = got.append
    stacks[src].send_data(dst=dst, payload_bytes=16)
    sim.run(until=5.0)
    assert len(got) == 1
    shortest = nx.shortest_path_length(graph, src, dst)
    # AODV can never beat the true shortest path.  It may exceed it: the
    # destination answers the first RREQ copy, and per-hop rebroadcast
    # jitter (0-10 ms vs the 1 ms ideal-MAC hop delay) occasionally lets a
    # longer flood branch win the race by a couple of hops.
    assert shortest <= got[0].hops <= shortest + 3


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_scenario_determinism_property(seed):
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import ScenarioConfig

    config = ScenarioConfig(
        protocol="aodv", grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=5.0, warmup_s=1.0, seed=seed,
    )
    a = run_scenario(config)
    b = run_scenario(config)
    assert a.events_executed == b.events_executed
    assert a.totals == b.totals
