"""Unit tests for routing-table machinery."""

from repro.net.routing_base import RouteEntry, RoutingTable
from repro.sim.engine import Simulator


def entry(dst=5, next_hop=2, hops=3, seqno=1, cost=3.0, expiry=10.0, **kw):
    return RouteEntry(
        dst=dst, next_hop=next_hop, hop_count=hops, seqno=seqno,
        cost=cost, expiry=expiry, **kw
    )


class TestRoutingTable:
    def test_lookup_valid_route(self):
        t = RoutingTable(Simulator())
        t.upsert(entry())
        e = t.lookup(5)
        assert e is not None and e.next_hop == 2

    def test_lookup_missing(self):
        assert RoutingTable(Simulator()).lookup(9) is None

    def test_expiry_invalidates(self):
        sim = Simulator()
        t = RoutingTable(sim)
        t.upsert(entry(expiry=1.0))
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert t.lookup(5) is None
        assert t.get_any(5) is not None  # seqno memory survives

    def test_invalidate(self):
        t = RoutingTable(Simulator())
        t.upsert(entry())
        assert t.invalidate(5) is not None
        assert t.lookup(5) is None
        assert t.invalidate(5) is None  # second time: nothing to do

    def test_upsert_preserves_precursors(self):
        t = RoutingTable(Simulator())
        first = entry()
        first.precursors.add(7)
        t.upsert(first)
        t.upsert(entry(next_hop=3))
        assert 7 in t.lookup(5).precursors

    def test_routes_via(self):
        t = RoutingTable(Simulator())
        t.upsert(entry(dst=5, next_hop=2))
        t.upsert(entry(dst=6, next_hop=2))
        t.upsert(entry(dst=7, next_hop=3))
        assert {e.dst for e in t.routes_via(2)} == {5, 6}

    def test_refresh_extends_expiry(self):
        sim = Simulator()
        t = RoutingTable(sim)
        t.upsert(entry(expiry=1.0))
        t.refresh(5, lifetime_s=10.0)
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert t.lookup(5) is not None

    def test_refresh_never_shortens(self):
        t = RoutingTable(Simulator())
        t.upsert(entry(expiry=100.0))
        t.refresh(5, lifetime_s=1.0)
        assert t.get_any(5).expiry == 100.0

    def test_contains_and_len(self):
        t = RoutingTable(Simulator())
        t.upsert(entry())
        assert 5 in t
        assert 9 not in t
        assert len(t) == 1

    def test_valid_count(self):
        sim = Simulator()
        t = RoutingTable(sim)
        t.upsert(entry(dst=5, expiry=1.0))
        t.upsert(entry(dst=6, expiry=100.0))
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert t.valid_count() == 1
