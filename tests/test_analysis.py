"""Tests for replication statistics."""

import math

import pytest

from repro.analysis.stats import ConfidenceInterval, mean_ci, summarize


class TestMeanCi:
    def test_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3

    def test_single_sample_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_empty_is_nan(self):
        ci = mean_ci([])
        assert math.isnan(ci.mean)
        assert ci.n == 0

    def test_nans_dropped(self):
        ci = mean_ci([1.0, float("nan"), 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 2

    def test_t_quantile_matches_textbook(self):
        # n=5, 95 %: t = 2.776; samples with sd=1 → hw = 2.776/sqrt(5)
        vals = [-1.26491106, -0.63245553, 0.0, 0.63245553, 1.26491106]
        ci = mean_ci(vals, level=0.95)
        assert ci.half_width == pytest.approx(2.776 / math.sqrt(5), rel=1e-3)

    def test_bounds(self):
        ci = mean_ci([2.0, 4.0, 6.0])
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)

    def test_str(self):
        assert "±" in str(mean_ci([1.0, 2.0]))

    def test_wider_at_higher_level(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert mean_ci(vals, 0.99).half_width > mean_ci(vals, 0.90).half_width

    def test_zero_variance_zero_width(self):
        # Identical replicates must give a degenerate interval, not NaN
        # (sd = 0 → sem = 0 → half-width exactly 0).
        ci = mean_ci([7.0] * 10)
        assert ci.mean == 7.0
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 7.0

    def test_all_nan_is_empty(self):
        ci = mean_ci([float("nan")] * 4)
        assert math.isnan(ci.mean)
        assert math.isnan(ci.half_width)
        assert ci.n == 0

    def test_single_after_nan_drop(self):
        ci = mean_ci([float("nan"), 2.5, float("nan")])
        assert ci.mean == 2.5
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_bounds_degrade_gracefully(self):
        # NaN mean propagates into bounds rather than raising.
        ci = mean_ci([])
        assert math.isnan(ci.low) and math.isnan(ci.high)


class TestSummarize:
    def test_per_key(self):
        rows = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 20.0}]
        s = summarize(rows)
        assert s["a"].mean == pytest.approx(2.0)
        assert s["b"].mean == pytest.approx(15.0)

    def test_missing_keys_tolerated(self):
        rows = [{"a": 1.0}, {"a": 3.0, "b": 5.0}]
        s = summarize(rows)
        assert s["b"].n == 1

    def test_types(self):
        s = summarize([{"x": 1.0}])
        assert isinstance(s["x"], ConfidenceInterval)

    def test_nan_cells_dropped_per_key(self):
        rows = [{"a": float("nan"), "b": 1.0}, {"a": 4.0, "b": 3.0}]
        s = summarize(rows)
        assert s["a"].mean == 4.0
        assert s["a"].n == 1
        assert s["b"].n == 2

    def test_empty_rows(self):
        assert summarize([]) == {}
