"""Tests for replication statistics."""

import math

import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    mean_ci,
    reps_to_target,
    sequential_halfwidth,
    summarize,
    t_critical,
)


class TestMeanCi:
    def test_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3

    def test_single_sample_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_empty_is_nan(self):
        ci = mean_ci([])
        assert math.isnan(ci.mean)
        assert ci.n == 0

    def test_nans_dropped(self):
        ci = mean_ci([1.0, float("nan"), 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 2

    def test_t_quantile_matches_textbook(self):
        # n=5, 95 %: t = 2.776; samples with sd=1 → hw = 2.776/sqrt(5)
        vals = [-1.26491106, -0.63245553, 0.0, 0.63245553, 1.26491106]
        ci = mean_ci(vals, level=0.95)
        assert ci.half_width == pytest.approx(2.776 / math.sqrt(5), rel=1e-3)

    def test_bounds(self):
        ci = mean_ci([2.0, 4.0, 6.0])
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)

    def test_str(self):
        assert "±" in str(mean_ci([1.0, 2.0]))

    def test_wider_at_higher_level(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert mean_ci(vals, 0.99).half_width > mean_ci(vals, 0.90).half_width

    def test_zero_variance_zero_width(self):
        # Identical replicates must give a degenerate interval, not NaN
        # (sd = 0 → sem = 0 → half-width exactly 0).
        ci = mean_ci([7.0] * 10)
        assert ci.mean == 7.0
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 7.0

    def test_all_nan_is_empty(self):
        ci = mean_ci([float("nan")] * 4)
        assert math.isnan(ci.mean)
        assert math.isnan(ci.half_width)
        assert ci.n == 0

    def test_single_after_nan_drop(self):
        ci = mean_ci([float("nan"), 2.5, float("nan")])
        assert ci.mean == 2.5
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_bounds_degrade_gracefully(self):
        # NaN mean propagates into bounds rather than raising.
        ci = mean_ci([])
        assert math.isnan(ci.low) and math.isnan(ci.high)


class TestSummarize:
    def test_per_key(self):
        rows = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 20.0}]
        s = summarize(rows)
        assert s["a"].mean == pytest.approx(2.0)
        assert s["b"].mean == pytest.approx(15.0)

    def test_missing_keys_tolerated(self):
        rows = [{"a": 1.0}, {"a": 3.0, "b": 5.0}]
        s = summarize(rows)
        assert s["b"].n == 1

    def test_types(self):
        s = summarize([{"x": 1.0}])
        assert isinstance(s["x"], ConfidenceInterval)

    def test_nan_cells_dropped_per_key(self):
        rows = [{"a": float("nan"), "b": 1.0}, {"a": 4.0, "b": 3.0}]
        s = summarize(rows)
        assert s["a"].mean == 4.0
        assert s["a"].n == 1
        assert s["b"].n == 2

    def test_empty_rows(self):
        assert summarize([]) == {}


class TestSequentialHelpers:
    """Degenerate-input behaviour of the adaptive-stopping statistics.

    These pins matter: ``sequential_halfwidth`` decides whether a campaign
    stops buying replicates, so its edge cases must err conservative —
    and must *disagree* with the report-facing ``mean_ci`` at n = 1.
    """

    def test_t_critical_matches_textbook(self):
        assert t_critical(10, 0.95) == pytest.approx(2.262, abs=1e-3)

    def test_t_critical_needs_two_samples(self):
        with pytest.raises(ValueError, match="n ≥ 2"):
            t_critical(1)

    def test_t_critical_level_bounds(self):
        with pytest.raises(ValueError, match="level"):
            t_critical(5, 1.0)

    def test_halfwidth_empty_is_inf(self):
        assert math.isinf(sequential_halfwidth([]))

    def test_halfwidth_single_sample_is_inf(self):
        # A stopping rule must never conclude from one observation —
        # even though mean_ci reports 0.0 for the same input.
        assert math.isinf(sequential_halfwidth([1.0]))
        assert mean_ci([1.0]).half_width == 0.0

    def test_halfwidth_nans_dropped_before_count(self):
        assert math.isinf(sequential_halfwidth([float("nan"), 1.0]))

    def test_halfwidth_zero_variance_is_zero(self):
        assert sequential_halfwidth([2.0, 2.0, 2.0]) == 0.0

    def test_halfwidth_matches_mean_ci_when_regular(self):
        values = [1.0, 2.0, 3.0, 5.0]
        assert sequential_halfwidth(values) \
            == pytest.approx(mean_ci(values).half_width)

    def test_halfwidth_shrinks_with_n(self):
        narrow = sequential_halfwidth([1.0, 2.0] * 8)
        wide = sequential_halfwidth([1.0, 2.0])
        assert narrow < wide

    def test_reps_to_target_needs_variance_estimate(self):
        assert reps_to_target([], 0.1) == 1
        assert reps_to_target([1.0], 0.1) == 2

    def test_reps_to_target_nonpositive_target(self):
        assert reps_to_target([1.0, 2.0], 0.0) == 3

    def test_reps_to_target_zero_variance_is_satisfied(self):
        assert reps_to_target([2.0, 2.0, 2.0], 0.001) == 3

    def test_reps_to_target_never_below_current_n(self):
        assert reps_to_target([1.0, 1.001, 0.999], 100.0) == 3

    def test_reps_to_target_grows_for_tight_targets(self):
        loose = reps_to_target([1.0, 2.0, 3.0], 1.0)
        tight = reps_to_target([1.0, 2.0, 3.0], 0.01)
        assert tight > loose > 0
