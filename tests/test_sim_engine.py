"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import SchedulingError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "late", priority=5)
        sim.schedule(1.0, fired.append, "early", priority=-5)
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(4.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5, 4.25]
        assert sim.now == 4.25

    def test_schedule_in_is_relative(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_in(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule(4.0, lambda: None)

    def test_schedule_at_now_allowed(self):
        sim = Simulator()
        fired = []

        def chain():
            sim.schedule(sim.now, fired.append, "zero-delay")

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == ["zero-delay"]

    def test_nonfinite_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(math.inf, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule(math.nan, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule_in(-0.1, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_in(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "x")
        h.cancel()
        sim.run()
        assert fired == []
        assert h.cancelled

    def test_double_cancel_raises(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        with pytest.raises(SchedulingError):
            h.cancel()

    def test_cancel_after_fire_raises(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        assert h.expired
        with pytest.raises(SchedulingError):
            h.cancel()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        h = sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_bound_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "at-bound")
        sim.schedule(5.0001, fired.append, "beyond")
        sim.run(until=5.0)
        assert fired == ["at-bound"]
        assert sim.now == 5.0

    def test_run_resumable_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=1.5)
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_executes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]
        assert sim.step()
        assert not sim.step()

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        h = sim.schedule(9.0, lambda: None)
        h.cancel()
        sim.run()
        assert sim.events_executed == 4

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek() == 2.0

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SchedulingError):
            sim.run()


class TestHeapCompaction:
    """Cancelled entries are reclaimed once they dominate the heap."""

    def test_heap_shrinks_under_cancel_churn(self):
        from repro.sim.engine import _COMPACT_MIN_DEAD

        sim = Simulator()
        keeper = sim.schedule(1e9, lambda: None)
        for k in range(4 * _COMPACT_MIN_DEAD):
            sim.schedule(1.0 + k * 1e-9, lambda: None).cancel()
        # Without compaction the heap would hold ~4·threshold dead entries.
        assert len(sim._heap) < 2 * _COMPACT_MIN_DEAD
        assert sim.pending == 1
        assert not keeper.expired

    def test_order_preserved_across_compaction(self):
        from repro.sim.engine import _COMPACT_MIN_DEAD

        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(3.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "early2")  # FIFO tie
        for _ in range(2 * _COMPACT_MIN_DEAD):
            sim.schedule(1.0, lambda: None).cancel()
        sim.run()
        assert fired == ["early", "early2", "late"]

    def test_cancel_during_run_is_safe(self):
        from repro.sim.engine import _COMPACT_MIN_DEAD

        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(2.0 + k * 1e-9, lambda: None)
            for k in range(2 * _COMPACT_MIN_DEAD)
        ]

        def mass_cancel():
            for h in handles:
                h.cancel()  # triggers compaction while run() is popping

        sim.schedule(1.0, mass_cancel)
        sim.schedule(3.0, fired.append, "after")
        sim.run()
        assert fired == ["after"]
        assert sim.pending == 0

    def test_pending_stays_exact(self):
        sim = Simulator()
        hs = [sim.schedule(float(k + 1), lambda: None) for k in range(10)]
        assert sim.pending == 10
        for h in hs[::2]:
            h.cancel()
        assert sim.pending == 5
        sim.run(until=3.0)
        assert sim.pending == sum(
            1 for h in hs if not h.expired
        )

    def test_timer_restart_churn_bounded_heap(self):
        from repro.sim.engine import _COMPACT_MIN_DEAD
        from repro.sim.process import Timer

        sim = Simulator()
        t = Timer(sim, lambda: None)
        for _ in range(10 * _COMPACT_MIN_DEAD):
            t.restart(1.0)
        assert len(sim._heap) < 2 * _COMPACT_MIN_DEAD
        t.cancel()
        sim.run()
        assert sim.pending == 0
