"""Tests for placement, connectivity graphs, gateways, and mobility."""

import networkx as nx
import numpy as np
import pytest

from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.gateway import select_gateways
from repro.topology.graph import (
    connectivity_graph,
    ensure_connected_positions,
    mean_degree,
)
from repro.topology.mobility import RandomWaypoint, StaticMobility
from repro.topology.placement import chain_positions, grid_positions, random_positions


class TestPlacement:
    def test_grid_shape_and_spacing(self):
        pos = grid_positions(3, 4, 100.0)
        assert pos.shape == (12, 2)
        assert pos[1, 0] - pos[0, 0] == pytest.approx(100.0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_positions(0, 3)
        with pytest.raises(ValueError):
            grid_positions(3, 3, spacing_m=0.0)

    def test_random_within_area(self):
        rng = np.random.default_rng(1)
        pos = random_positions(50, (500.0, 300.0), rng)
        assert pos.shape == (50, 2)
        assert np.all(pos[:, 0] <= 500.0) and np.all(pos[:, 1] <= 300.0)
        assert np.all(pos >= 0.0)

    def test_random_min_separation(self):
        rng = np.random.default_rng(2)
        pos = random_positions(20, (1000.0, 1000.0), rng, min_separation_m=50.0)
        d = np.hypot(*(pos[:, None, :] - pos[None, :, :]).transpose(2, 0, 1))
        np.fill_diagonal(d, np.inf)
        assert d.min() >= 50.0

    def test_random_impossible_density_raises(self):
        rng = np.random.default_rng(3)
        with pytest.raises(RuntimeError):
            random_positions(100, (10.0, 10.0), rng, min_separation_m=50.0,
                             max_attempts=200)

    def test_chain(self):
        pos = chain_positions(4, 250.0)
        assert pos[-1].tolist() == [750.0, 0.0]

    def test_reproducible_with_seed(self):
        a = random_positions(10, (100, 100), np.random.default_rng(7))
        b = random_positions(10, (100, 100), np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestGraph:
    def test_grid_connectivity_at_range(self):
        pos = grid_positions(3, 3, 200.0)
        g = connectivity_graph(pos, 250.0)
        assert nx.is_connected(g)
        # 250 m links connect 4-neighbours only (diagonal is 283 m)
        assert g.degree[4] == 4  # centre node

    def test_disconnection_below_spacing(self):
        pos = grid_positions(3, 3, 200.0)
        g = connectivity_graph(pos, 150.0)
        assert g.number_of_edges() == 0

    def test_positions_attached(self):
        pos = grid_positions(2, 2, 100.0)
        g = connectivity_graph(pos, 150.0)
        assert g.nodes[3]["pos"] == (100.0, 100.0)

    def test_mean_degree(self):
        pos = grid_positions(2, 2, 100.0)
        g = connectivity_graph(pos, 120.0)  # edges: 4 sides, no diagonals
        assert mean_degree(g) == pytest.approx(2.0)
        assert mean_degree(nx.Graph()) == 0.0

    def test_ensure_connected_retries(self):
        rng = np.random.default_rng(5)
        pos = ensure_connected_positions(
            lambda: random_positions(15, (600.0, 600.0), rng),
            range_m=250.0,
        )
        assert nx.is_connected(connectivity_graph(pos, 250.0))

    def test_ensure_connected_gives_up(self):
        rng = np.random.default_rng(5)
        with pytest.raises(RuntimeError):
            ensure_connected_positions(
                lambda: random_positions(30, (10_000.0, 10_000.0), rng),
                range_m=100.0,
                max_tries=3,
            )

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            connectivity_graph(grid_positions(2, 2), 0.0)


class TestGateways:
    def test_single_gateway_is_central(self):
        pos = grid_positions(5, 5, 100.0)
        assert select_gateways(pos, 1) == [12]  # centre of a 5×5 grid

    def test_two_gateways_spread(self):
        pos = grid_positions(5, 5, 100.0)
        gws = select_gateways(pos, 2)
        d = np.hypot(*(pos[gws[0]] - pos[gws[1]]))
        assert d >= 200.0

    def test_k_bounds(self):
        pos = grid_positions(2, 2)
        with pytest.raises(ValueError):
            select_gateways(pos, 0)
        with pytest.raises(ValueError):
            select_gateways(pos, 5)

    def test_all_distinct(self):
        pos = grid_positions(4, 4, 100.0)
        gws = select_gateways(pos, 5)
        assert len(set(gws)) == 5


class TestMobility:
    def _channel(self, n=3):
        sim = Simulator()
        ch = Channel(sim, TwoRayGround(), propagation_delay=False)
        rs = RandomStreams(1)
        for i in range(n):
            r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
            ch.register(r, (float(i * 100), 0.0))
        return sim, ch

    def test_static_is_noop(self):
        m = StaticMobility()
        m.start()
        m.stop()

    def test_waypoint_moves_nodes(self):
        sim, ch = self._channel()
        rng = np.random.default_rng(3)
        rwp = RandomWaypoint(
            sim, ch, [0, 1, 2], (500.0, 500.0), (5.0, 10.0), rng,
            update_interval_s=0.1,
        )
        before = [ch.position_of(i).copy() for i in range(3)]
        rwp.start()
        sim.run(until=5.0)
        rwp.stop()
        moved = [
            not np.allclose(before[i], ch.position_of(i)) for i in range(3)
        ]
        assert all(moved)

    def test_speed_within_range(self):
        sim, ch = self._channel()
        rng = np.random.default_rng(3)
        rwp = RandomWaypoint(sim, ch, [0], (500.0, 500.0), (5.0, 10.0), rng)
        rwp.start()
        assert 5.0 <= rwp.speed_of(0) <= 10.0

    def test_positions_stay_in_area(self):
        sim, ch = self._channel()
        rng = np.random.default_rng(4)
        rwp = RandomWaypoint(
            sim, ch, [0, 1, 2], (300.0, 300.0), (20.0, 30.0), rng,
            update_interval_s=0.05,
        )
        rwp.start()
        for t in np.arange(1.0, 10.0, 1.0):
            sim.run(until=float(t))
            for i in range(3):
                p = ch.position_of(i)
                assert -1.0 <= p[0] <= 301.0 and -1.0 <= p[1] <= 301.0

    def test_invalid_speeds(self):
        sim, ch = self._channel()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypoint(sim, ch, [0], (100, 100), (0.0, 5.0), rng)
        with pytest.raises(ValueError):
            RandomWaypoint(sim, ch, [0], (100, 100), (5.0, 1.0), rng)
