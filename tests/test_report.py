"""Tests for the report generator and EXPERIMENTS.md writing."""

from pathlib import Path

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments import report as report_mod
from repro.experiments.report import generate_report, write_experiments_md


@pytest.fixture
def fake_figures(monkeypatch):
    """Replace the figure registry with two cheap synthetic figures."""

    def fig_numeric(quick: bool) -> FigureResult:
        return FigureResult(
            name="figA",
            title="numeric sweep",
            headers=["rate", "aodv_pdr", "nlr_pdr"],
            rows=[[10, 1.0, 1.0], [20, 0.9, 0.95], [30, 0.7, 0.85]],
            expectation="nlr above aodv",
            notes="measured note",
        )

    def fig_table(quick: bool) -> FigureResult:
        return FigureResult(
            name="tabB",
            title="categorical summary",
            headers=["protocol", "pdr"],
            rows=[["aodv", 0.9], ["nlr", 0.95]],
        )

    registry = {"figA": fig_numeric, "tabB": fig_table}
    monkeypatch.setattr(report_mod, "ALL_FIGURES", registry)
    return registry


class TestGenerateReport:
    def test_contains_tables_and_expectations(self, fake_figures):
        out = generate_report(quick=True)
        assert "## figA: numeric sweep" in out
        assert "## tabB: categorical summary" in out
        assert "**Expected shape:** nlr above aodv" in out
        assert "**Measured:** measured note" in out
        assert "Provenance caveat" in out

    def test_numeric_figure_gets_chart(self, fake_figures):
        out = generate_report(quick=True)
        assert "o=aodv" in out and "x=nlr" in out

    def test_figure_subset(self, fake_figures):
        out = generate_report(figures=["tabB"], quick=True)
        assert "tabB" in out
        assert "figA" not in out

    def test_progress_callback(self, fake_figures):
        seen = []
        generate_report(quick=True, progress=seen.append)
        assert len(seen) == 2

    def test_write_experiments_md(self, fake_figures, tmp_path):
        path = write_experiments_md(path=tmp_path / "EXP.md", quick=True)
        assert Path(path).exists()
        assert "figA" in Path(path).read_text()


class TestRenderedFigure:
    def test_render_includes_all_parts(self):
        fig = FigureResult(
            name="f", title="t", headers=["a"], rows=[[1]],
            expectation="exp", notes="note",
        )
        out = fig.render()
        assert "f: t" in out
        assert "Expected shape: exp" in out
        assert "Notes: note" in out
