"""Tests for gratuitous RREP, delay percentiles/jitter, config round-trip."""

import math

import pytest

from repro.net.aodv import AodvConfig, AodvRouting

from tests.conftest import chain_adjacency, make_perfect_net


# ---------------------------------------------------------------------- #
# Gratuitous RREP (RFC 3561 §6.6.3)
# ---------------------------------------------------------------------- #
class TestGratuitousRrep:
    def _primed_chain(self, gratuitous: bool):
        cfg = AodvConfig(
            intermediate_reply=True, gratuitous_rrep=gratuitous,
            hello_enabled=False,
        )
        sim, stacks = make_perfect_net(
            chain_adjacency(5),
            lambda nid, s: AodvRouting(cfg, s.stream(f"r{nid}")),
        )
        for s in stacks:
            s.start()
        # Prime a route 2→4 so node 2 can answer intermediately.
        stacks[2].send_data(dst=4, payload_bytes=10)
        sim.run(until=2.0)
        # Node 0 discovers 4; node 2 answers from its table.
        stacks[0].send_data(dst=4, payload_bytes=10)
        sim.run(until=4.0)
        return sim, stacks

    def test_destination_learns_origin_route(self):
        sim, stacks = self._primed_chain(gratuitous=True)
        # Destination 4 now has a route back to originator 0 without any
        # discovery of its own.
        route = stacks[4].routing.table.lookup(0)
        assert route is not None
        assert route.next_hop == 3

    def test_destination_can_reply_without_discovery(self):
        sim, stacks = self._primed_chain(gratuitous=True)
        rreq_before = stacks[4].routing.control_tx["rreq"]
        got = []
        stacks[0].receive_callback = got.append
        stacks[4].send_data(dst=0, payload_bytes=10, seq=77)
        sim.run(until=6.0)
        assert [p.seq for p in got] == [77]
        assert stacks[4].routing.control_tx["rreq"] == rreq_before

    def test_disabled_by_default_no_route_at_destination(self):
        sim, stacks = self._primed_chain(gratuitous=False)
        assert stacks[4].routing.table.lookup(0) is None


# ---------------------------------------------------------------------- #
# Delay percentiles and jitter
# ---------------------------------------------------------------------- #
class TestDelayTailMetrics:
    def _collector(self, delays):
        from repro.metrics.flowstats import FlowStatsCollector
        from repro.net.packet import Packet, PacketKind

        c = FlowStatsCollector()
        for k, d in enumerate(delays):
            p = Packet(kind=PacketKind.DATA, src=0, dst=1, ttl=8,
                       payload_bytes=100, flow_id=0, seq=k, created_at=1.0)
            c.on_send(p)
            c.on_receive(p, now=1.0 + d)
        return c

    def test_percentiles(self):
        c = self._collector([0.01 * k for k in range(1, 101)])
        rec = c.flows[0]
        assert rec.delay_percentile_s(50) == pytest.approx(0.505, abs=0.01)
        assert rec.delay_percentile_s(95) == pytest.approx(0.95, abs=0.011)
        assert rec.delay_percentile_s(100) == pytest.approx(1.0)
        assert c.delay_percentile_s(95) == rec.delay_percentile_s(95)

    def test_tail_exceeds_mean_for_skewed_delays(self):
        c = self._collector([0.01] * 95 + [1.0] * 5)
        rec = c.flows[0]
        assert rec.delay_percentile_s(99) > 10 * rec.mean_delay_s

    def test_jitter(self):
        c = self._collector([0.1, 0.3, 0.1, 0.3])
        assert c.flows[0].jitter_s == pytest.approx(0.2)
        steady = self._collector([0.25] * 10)
        assert steady.flows[0].jitter_s == pytest.approx(0.0)

    def test_empty_and_validation(self):
        c = self._collector([])
        assert math.isnan(c.delay_percentile_s(95))
        c2 = self._collector([0.1])
        assert math.isnan(c2.flows[0].jitter_s)
        with pytest.raises(ValueError):
            c2.flows[0].delay_percentile_s(120)


# ---------------------------------------------------------------------- #
# Config serialisation round-trip
# ---------------------------------------------------------------------- #
class TestConfigSerialization:
    def _config(self):
        from repro.core.nlr import NlrConfig
        from repro.experiments.scenario import ScenarioConfig
        from repro.mac.csma import MacConfig

        return ScenarioConfig(
            protocol="nlr", grid_nx=4, grid_ny=6, spacing_m=210.0,
            n_flows=7, flow_rate_pps=33.0, seed=99,
            mac_config=MacConfig(rts_cts_enabled=True, queue_capacity=80),
            nlr=NlrConfig(hop_weight=0.5, gamma=0.8),
            mobility="rwp", speed_range=(2.0, 7.0),
        )

    def test_roundtrip_preserves_everything(self):
        from repro.experiments.serialization import (
            config_from_dict,
            config_to_dict,
        )

        original = self._config()
        rebuilt = config_from_dict(config_to_dict(original))
        assert rebuilt == original

    def test_file_roundtrip(self, tmp_path):
        from repro.experiments.serialization import load_config, save_config

        original = self._config()
        path = save_config(original, tmp_path / "scenario.json")
        assert load_config(path) == original

    def test_unknown_keys_rejected(self):
        from repro.experiments.serialization import (
            config_from_dict,
            config_to_dict,
        )

        data = config_to_dict(self._config())
        data["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            config_from_dict(data)

    def test_nested_unknown_keys_rejected(self):
        from repro.experiments.serialization import (
            config_from_dict,
            config_to_dict,
        )

        data = config_to_dict(self._config())
        data["nlr"]["aodv"]["flux"] = 1
        with pytest.raises(ValueError, match="flux"):
            config_from_dict(data)

    def test_cli_config_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.experiments.serialization import load_config, save_config
        from repro.experiments.scenario import ScenarioConfig

        cfg = ScenarioConfig(
            protocol="oracle", grid_nx=3, grid_ny=3, n_flows=2,
            flow_rate_pps=5.0, sim_time_s=6.0, warmup_s=1.0, seed=3,
        )
        path = save_config(cfg, tmp_path / "s.json")
        rc = main(["--config", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "oracle on 9 nodes, seed 3" in out

    def test_cli_save_config(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.experiments.serialization import load_config

        target = tmp_path / "saved.json"
        rc = main([
            "--protocol", "aodv", "--grid", "3x3", "--flows", "2",
            "--rate", "5", "--time", "6", "--warmup", "1",
            "--save-config", str(target),
        ])
        assert rc == 0
        cfg = load_config(target)
        assert cfg.protocol == "aodv"
        assert cfg.node_count == 9

    def test_cli_bad_config_errors(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"protocol": "quantum"}')
        rc = main(["--config", str(bad)])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err
