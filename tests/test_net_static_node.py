"""Tests for oracle routing and the node stack plumbing."""

import networkx as nx
import pytest

from repro.net.static_routing import RouteOracle, StaticRouting

from tests.conftest import chain_adjacency, make_perfect_net


def oracle_factory(graph):
    oracle = RouteOracle(graph)

    def make(node_id, streams):
        return StaticRouting(oracle)

    return make, oracle


def chain_graph(n):
    g = nx.Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestRouteOracle:
    def test_next_hops_follow_shortest_path(self):
        g = chain_graph(5)
        oracle = RouteOracle(g)
        assert oracle.next_hop(0, 4) == 1
        assert oracle.next_hop(3, 0) == 2

    def test_unreachable_is_none(self):
        g = chain_graph(3)
        g.add_node(9)
        oracle = RouteOracle(g)
        assert oracle.next_hop(0, 9) is None
        assert oracle.hop_count(0, 9) is None

    def test_hop_count(self):
        oracle = RouteOracle(chain_graph(5))
        assert oracle.hop_count(0, 4) == 4

    def test_weighted_paths(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=10.0)
        g.add_edge(0, 2, weight=1.0)
        g.add_edge(2, 1, weight=1.0)
        oracle = RouteOracle(g)
        assert oracle.next_hop(0, 1) == 2  # cheaper two-hop path


class TestStaticRouting:
    def test_end_to_end(self):
        n = 5
        factory, _ = oracle_factory(chain_graph(n))
        sim, stacks = make_perfect_net(chain_adjacency(n), factory)
        got = []
        stacks[4].receive_callback = got.append
        stacks[0].send_data(dst=4, payload_bytes=64, seq=0)
        sim.run(until=2.0)
        assert len(got) == 1
        assert got[0].hops == 4

    def test_zero_control_overhead(self):
        factory, _ = oracle_factory(chain_graph(4))
        sim, stacks = make_perfect_net(chain_adjacency(4), factory)
        stacks[0].send_data(dst=3, payload_bytes=64)
        sim.run(until=2.0)
        assert all(
            sum(s.routing.control_tx.values()) == 0 for s in stacks
        )

    def test_unreachable_counts_drop(self):
        g = chain_graph(3)
        g.add_node(3)
        factory, _ = oracle_factory(g)
        adj = chain_adjacency(3)
        adj[3] = []
        sim, stacks = make_perfect_net(adj, factory)
        stacks[0].send_data(dst=3, payload_bytes=64)
        sim.run(until=2.0)
        assert stacks[0].routing.data_dropped_no_route == 1

    def test_ttl_exhaustion(self):
        factory, _ = oracle_factory(chain_graph(6))
        sim, stacks = make_perfect_net(chain_adjacency(6), factory)
        got = []
        stacks[5].receive_callback = got.append
        stacks[0].send_data(dst=5, payload_bytes=64, ttl=3)
        sim.run(until=2.0)
        assert got == []
        assert sum(s.routing.data_dropped_ttl for s in stacks) == 1


class TestNodeStack:
    def test_counters(self):
        factory, _ = oracle_factory(chain_graph(3))
        sim, stacks = make_perfect_net(chain_adjacency(3), factory)
        stacks[0].send_data(dst=2, payload_bytes=64)
        sim.run(until=2.0)
        assert stacks[0].packets_sent == 1
        assert stacks[2].packets_received == 1

    def test_cross_layer_passthrough(self):
        factory, _ = oracle_factory(chain_graph(2))
        sim, stacks = make_perfect_net(chain_adjacency(2), factory)
        assert stacks[0].queue_occupancy == 0.0
        assert stacks[0].channel_busy_ratio() == 0.0

    def test_control_bytes_accounted_on_stack(self):
        from repro.net.aodv import AodvConfig, AodvRouting

        def aodv(node_id, streams):
            return AodvRouting(
                AodvConfig(hello_enabled=False), streams.stream(f"r{node_id}")
            )

        sim, stacks = make_perfect_net(chain_adjacency(3), aodv)
        for s in stacks:
            s.start()
        stacks[0].send_data(dst=2, payload_bytes=64)
        sim.run(until=2.0)
        # one RREQ (24 B) from the origin at minimum
        assert stacks[0].routing.control_bytes_tx >= 24
