"""Unit tests for propagation models."""

import numpy as np
import pytest

from repro.phy.propagation import (
    FreeSpace,
    LogDistance,
    LogNormalShadowing,
    TwoRayGround,
)
from repro.sim.rng import RandomStreams

TX_POWER_NS2 = 0.28183815
RX_THRESH_NS2 = 3.652e-10
CS_THRESH_NS2 = 1.559e-11

ORIGIN = np.zeros(2)


def at(model, d, p=TX_POWER_NS2):
    return model.rx_power(p, ORIGIN, np.array([d, 0.0]))


class TestFreeSpace:
    def test_inverse_square_law(self):
        m = FreeSpace()
        assert at(m, 200.0) / at(m, 400.0) == pytest.approx(4.0)

    def test_monotone_decreasing(self):
        m = FreeSpace()
        powers = [at(m, d) for d in [10, 50, 100, 500, 1000]]
        assert all(a > b for a, b in zip(powers, powers[1:]))

    def test_distance_clamp_no_singularity(self):
        m = FreeSpace()
        assert np.isfinite(at(m, 0.0))

    def test_vectorised_matches_scalar(self):
        m = FreeSpace()
        rx = np.array([[100.0, 0.0], [0.0, 250.0], [300.0, 400.0]])
        many = m.rx_power_many(1.0, ORIGIN, rx)
        for i, row in enumerate(rx):
            assert many[i] == pytest.approx(m.rx_power(1.0, ORIGIN, row))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            FreeSpace(frequency_hz=0.0)
        with pytest.raises(ValueError):
            FreeSpace(tx_gain=0.0)


class TestTwoRayGround:
    def test_ns2_250m_transmission_range(self):
        m = TwoRayGround()
        assert m.range_for(TX_POWER_NS2, RX_THRESH_NS2) == pytest.approx(
            250.0, rel=1e-3
        )

    def test_ns2_550m_carrier_sense_range(self):
        m = TwoRayGround()
        assert m.range_for(TX_POWER_NS2, CS_THRESH_NS2) == pytest.approx(
            550.0, rel=1e-3
        )

    def test_fourth_power_beyond_crossover(self):
        m = TwoRayGround()
        d0 = m.crossover_m * 2
        assert at(m, d0) / at(m, 2 * d0) == pytest.approx(16.0)

    def test_friis_below_crossover(self):
        m = TwoRayGround()
        f = FreeSpace()
        d = m.crossover_m / 4
        assert at(m, d) == pytest.approx(at(f, d))

    def test_continuous_enough_at_crossover(self):
        m = TwoRayGround()
        lo = at(m, m.crossover_m * 0.999)
        hi = at(m, m.crossover_m * 1.001)
        assert lo / hi == pytest.approx(1.0, rel=0.05)

    def test_invalid_height_rejected(self):
        with pytest.raises(ValueError):
            TwoRayGround(antenna_height_m=0.0)


class TestLogDistance:
    def test_exponent_controls_slope(self):
        m2 = LogDistance(exponent=2.0)
        m4 = LogDistance(exponent=4.0)
        # doubling distance: n=2 → /4, n=4 → /16
        assert at(m2, 100) / at(m2, 200) == pytest.approx(4.0)
        assert at(m4, 100) / at(m4, 200) == pytest.approx(16.0)

    def test_clamps_below_reference(self):
        m = LogDistance(reference_distance_m=10.0)
        assert at(m, 1.0) == at(m, 10.0)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            LogDistance(exponent=0.0)


class TestLogNormalShadowing:
    def _model(self, sigma=6.0, seed=1):
        return LogNormalShadowing(TwoRayGround(), sigma, RandomStreams(seed))

    def test_zero_sigma_equals_base(self):
        m = self._model(sigma=0.0)
        base = TwoRayGround()
        m.set_transmitter(0)
        rx = np.array([[300.0, 0.0]])
        got = m.rx_power_many(1.0, ORIGIN, rx, rx_ids=np.array([1]))
        assert got[0] == pytest.approx(base.rx_power(1.0, ORIGIN, rx[0]))

    def test_per_link_offsets_stable(self):
        m = self._model()
        m.set_transmitter(0)
        rx = np.array([[300.0, 0.0]])
        a = m.rx_power_many(1.0, ORIGIN, rx, rx_ids=np.array([1]))[0]
        b = m.rx_power_many(1.0, ORIGIN, rx, rx_ids=np.array([1]))[0]
        assert a == b

    def test_symmetric_links(self):
        m = self._model()
        rx = np.array([[300.0, 0.0]])
        m.set_transmitter(0)
        fwd = m.rx_power_many(1.0, ORIGIN, rx, rx_ids=np.array([5]))[0]
        m.set_transmitter(5)
        rev = m.rx_power_many(1.0, np.array([300.0, 0.0]),
                              np.array([[0.0, 0.0]]), rx_ids=np.array([0]))[0]
        assert fwd == pytest.approx(rev)

    def test_links_differ_from_each_other(self):
        m = self._model()
        m.set_transmitter(0)
        rx = np.array([[300.0, 0.0], [300.0, 0.0]])
        got = m.rx_power_many(1.0, ORIGIN, rx, rx_ids=np.array([1, 2]))
        assert got[0] != got[1]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            self._model(sigma=-1.0)


class TestRangeFor:
    def test_zero_when_threshold_unreachable(self):
        m = TwoRayGround()
        # demand more power than transmitted even at minimum distance
        assert m.range_for(1e-3, 1e3) == 0.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            TwoRayGround().range_for(1.0, 0.0)
