"""Unit tests for the cross-layer bus, load estimator, and neighbourhood load."""

import pytest

from repro.core.cross_layer import CrossLayerBus, LoadSample
from repro.core.load_metric import LoadEstimator, NeighbourhoodLoad
from repro.net.hello import NeighbourTable
from repro.sim.engine import Simulator


class FakeMac:
    def __init__(self, queue=0.0, busy=0.0):
        self._queue = queue
        self._busy = busy

    @property
    def queue_occupancy(self):
        return self._queue

    def channel_busy_ratio(self):
        return self._busy


def sample(q=0.0, b=0.0, t=0.0):
    return LoadSample(time=t, queue_occupancy=q, busy_ratio=b)


class TestCrossLayerBus:
    def test_periodic_sampling(self):
        sim = Simulator()
        bus = CrossLayerBus(sim, FakeMac(queue=0.5, busy=0.2), 0.25)
        got = []
        bus.subscribe(got.append)
        bus.start()
        sim.run(until=1.0)
        assert len(got) == 4
        assert got[0].queue_occupancy == 0.5
        assert got[0].busy_ratio == 0.2

    def test_sample_now_immediate(self):
        sim = Simulator()
        bus = CrossLayerBus(sim, FakeMac(queue=0.9))
        s = bus.sample_now()
        assert s.queue_occupancy == 0.9
        assert bus.last_sample is s
        assert bus.samples_taken == 1

    def test_multiple_subscribers(self):
        sim = Simulator()
        bus = CrossLayerBus(sim, FakeMac())
        a, b = [], []
        bus.subscribe(a.append)
        bus.subscribe(b.append)
        bus.sample_now()
        assert len(a) == len(b) == 1

    def test_stop_halts(self):
        sim = Simulator()
        bus = CrossLayerBus(sim, FakeMac(), 0.25)
        got = []
        bus.subscribe(got.append)
        bus.start()
        sim.run(until=0.5)
        bus.stop()
        sim.run(until=5.0)
        assert len(got) == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CrossLayerBus(Simulator(), FakeMac(), 0.0)


class TestLoadEstimator:
    def test_first_sample_initialises(self):
        e = LoadEstimator(queue_weight=1.0)
        e.on_sample(sample(q=0.8))
        assert e.load() == pytest.approx(0.8)

    def test_ewma_converges(self):
        e = LoadEstimator(queue_weight=1.0, alpha_ewma=0.3)
        for _ in range(60):
            e.on_sample(sample(q=0.6))
        assert e.load() == pytest.approx(0.6, abs=1e-6)

    def test_ewma_smooths_spikes(self):
        e = LoadEstimator(queue_weight=1.0, alpha_ewma=0.3)
        e.on_sample(sample(q=0.0))
        e.on_sample(sample(q=1.0))  # one spike
        assert e.load() == pytest.approx(0.3)

    def test_blend_weights(self):
        e = LoadEstimator(queue_weight=0.25)
        e.on_sample(sample(q=1.0, b=0.0))
        assert e.load() == pytest.approx(0.25)
        e2 = LoadEstimator(queue_weight=0.25)
        e2.on_sample(sample(q=0.0, b=1.0))
        assert e2.load() == pytest.approx(0.75)

    def test_endpoints_are_ablation_variants(self):
        q_only = LoadEstimator(queue_weight=1.0)
        b_only = LoadEstimator(queue_weight=0.0)
        for e in (q_only, b_only):
            e.on_sample(sample(q=0.9, b=0.1))
        assert q_only.load() == pytest.approx(0.9)
        assert b_only.load() == pytest.approx(0.1)

    def test_load_clamped_to_unit(self):
        e = LoadEstimator()
        e.on_sample(sample(q=1.0, b=1.0))
        assert 0.0 <= e.load() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadEstimator(queue_weight=1.5)
        with pytest.raises(ValueError):
            LoadEstimator(alpha_ewma=0.0)

    def test_component_accessors(self):
        e = LoadEstimator()
        e.on_sample(sample(q=0.4, b=0.8))
        assert e.queue_load == pytest.approx(0.4)
        assert e.busy_load == pytest.approx(0.8)


class TestNeighbourhoodLoad:
    def _make(self, own=0.6, own_weight=0.5, neighbour_loads=()):
        sim = Simulator()
        est = LoadEstimator(queue_weight=1.0, alpha_ewma=1.0)
        est.on_sample(sample(q=own))
        table = NeighbourTable(sim)
        for i, load in enumerate(neighbour_loads):
            table.heard(i + 10, load=load)
        return NeighbourhoodLoad(est, table, own_weight=own_weight)

    def test_no_neighbours_is_own_load(self):
        nl = self._make(own=0.6)
        assert nl.value() == pytest.approx(0.6)

    def test_blends_neighbour_mean(self):
        nl = self._make(own=0.6, neighbour_loads=[0.2, 0.4])
        # 0.5·0.6 + 0.5·0.3
        assert nl.value() == pytest.approx(0.45)

    def test_own_weight_one_ignores_neighbours(self):
        nl = self._make(own=0.6, own_weight=1.0, neighbour_loads=[1.0, 1.0])
        assert nl.value() == pytest.approx(0.6)

    def test_own_weight_zero_is_pure_neighbourhood(self):
        nl = self._make(own=0.0, own_weight=0.0, neighbour_loads=[0.8])
        assert nl.value() == pytest.approx(0.8)

    def test_clamped(self):
        nl = self._make(own=1.0, neighbour_loads=[1.0])
        assert nl.value() <= 1.0

    def test_own_load_accessor(self):
        nl = self._make(own=0.3)
        assert nl.own_load() == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._make(own_weight=1.2)
