"""Spatial-grid channel dispatch: grid mechanics, incremental
invalidation, and byte-identity with the exhaustive reference path."""

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.phy.channel import _KSTRIDE, Channel
from repro.phy.propagation import (
    FreeSpace,
    LogNormalShadowing,
    TwoRayGround,
)
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _make_channel(positions, spatial_index=True, node_ids=None, phy=None):
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=True,
                 spatial_index=spatial_index)
    rs = RandomStreams(7)
    ids = node_ids if node_ids is not None else range(len(positions))
    for nid, pos in zip(ids, positions):
        r = Radio(sim, nid, phy or PhyConfig(), rs.stream(f"p{nid}"))
        ch.register(r, tuple(pos))
    return ch


def _random_layout(n, extent, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, extent, size=(n, 2))


def _plan_signature(ch, tx, power):
    receivers, powers, delays = ch._dispatch_plan(tx, power)
    return ([r.node_id for r in receivers], powers, delays)


class TestPlanEquivalence:
    """Spatial and exhaustive dispatch agree bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_static_plans_identical(self, seed):
        pos = _random_layout(60, 3000.0, seed)
        spatial = _make_channel(pos, spatial_index=True)
        exact = _make_channel(pos, spatial_index=False)
        p = PhyConfig().tx_power_w
        for tx in range(60):
            ids_s, pw_s, dl_s = _plan_signature(spatial, tx, p)
            ids_e, pw_e, dl_e = _plan_signature(exact, tx, p)
            assert ids_s == ids_e
            assert pw_s == pw_e  # exact float equality, not approx
            assert dl_s == dl_e

    @pytest.mark.parametrize("seed", [3, 4])
    def test_plans_identical_under_moves(self, seed):
        rng = np.random.default_rng(seed)
        pos = _random_layout(40, 2500.0, seed)
        spatial = _make_channel(pos, spatial_index=True)
        exact = _make_channel(pos, spatial_index=False)
        p = PhyConfig().tx_power_w
        for step in range(30):
            tx = int(rng.integers(40))
            assert _plan_signature(spatial, tx, p) == _plan_signature(exact, tx, p)
            mover = int(rng.integers(40))
            new = tuple(rng.uniform(-200.0, 2700.0, size=2))
            spatial.set_position(mover, new)
            exact.set_position(mover, new)
            assert _plan_signature(spatial, mover, p) == _plan_signature(exact, mover, p)

    def test_neighbors_within_identical(self):
        pos = _random_layout(80, 2000.0, 9)
        spatial = _make_channel(pos, spatial_index=True)
        exact = _make_channel(pos, spatial_index=False)
        for nid in range(0, 80, 7):
            for radius in (0.0, 55.5, 250.0, 900.0, 1e4):
                assert spatial.neighbors_within(nid, radius) == \
                    exact.neighbors_within(nid, radius)

    def test_shadowing_falls_back_to_exhaustive(self):
        sim = Simulator()
        rs = RandomStreams(5)
        prop = LogNormalShadowing(TwoRayGround(), 4.0, rs)
        ch = Channel(sim, prop, spatial_index=True)
        for i in range(9):
            ch.register(Radio(sim, i, PhyConfig(), rs.stream(f"p{i}")),
                        (300.0 * (i % 3), 300.0 * (i // 3)))
        ch._dispatch_plan(4, PhyConfig().tx_power_w)
        assert not ch._grid_active and ch._grid_disabled
        # zero-sigma shadowing degenerates to the base model: grid allowed
        assert math.isfinite(
            LogNormalShadowing(TwoRayGround(), 0.0, rs).max_interference_range(
                0.28, 1e-12
            )
        )


class TestGridMechanics:
    def test_colocated_nodes_share_a_cell(self):
        pos = [(100.0, 100.0)] * 4 + [(900.0, 900.0)]
        ch = _make_channel(pos)
        assert ch._ensure_grid()
        cells = {int(ch._key_buf[i]) for i in range(4)}
        assert len(cells) == 1
        assert sorted(ch.neighbors_within(0, 1.0)) == [1, 2, 3]

    def test_boundary_and_negative_coordinates(self):
        ch = _make_channel([(0.0, 0.0), (500.0, 0.0)])
        assert ch._ensure_grid()
        c = ch._cell_size
        # Exactly on a cell edge, and in negative space.
        ch.register(
            Radio(ch.sim, 7, PhyConfig(), RandomStreams(3).stream("x")),
            (c, -c),
        )
        assert int(ch._key_buf[ch._index_of(7)]) == 1 * _KSTRIDE + (-1)
        exact = _make_channel(
            [(0.0, 0.0), (500.0, 0.0), (c, -c)], spatial_index=False,
            node_ids=[0, 1, 7],
        )
        for nid in (0, 1, 7):
            assert ch.neighbors_within(nid, 800.0) == \
                exact.neighbors_within(nid, 800.0)

    def test_radius_larger_than_arena(self):
        pos = _random_layout(25, 400.0, 11)
        spatial = _make_channel(pos)
        exact = _make_channel(pos, spatial_index=False)
        assert spatial.neighbors_within(3, 1e6) == exact.neighbors_within(3, 1e6)
        assert set(spatial.neighbors_within(3, 1e6)) == set(range(25)) - {3}

    def test_move_updates_grid_membership(self):
        ch = _make_channel([(0.0, 0.0), (100.0, 0.0)])
        assert ch._ensure_grid()
        far = 50 * ch._cell_size
        ch.set_position(1, (far, far))
        idx = ch._index_of(1)
        assert int(ch._key_buf[idx]) == ch._key_of(far, far)
        assert ch.neighbors_within(0, 200.0) == []
        ch.set_position(1, (100.0, 0.0))
        assert ch.neighbors_within(0, 200.0) == [1]

    def test_register_after_grid_build_is_queryable(self):
        ch = _make_channel([(0.0, 0.0), (200.0, 0.0)])
        p = PhyConfig().tx_power_w
        ch._dispatch_plan(0, p)  # builds grid + caches a plan
        ch.register(
            Radio(ch.sim, 9, PhyConfig(), RandomStreams(4).stream("x")),
            (100.0, 0.0),
        )
        ids, _, _ = _plan_signature(ch, 0, p)
        assert 9 in ids  # the stale 2-node plan was invalidated


class TestIncrementalInvalidation:
    def test_far_move_keeps_unrelated_plans(self):
        # Two clusters far apart: a move in one must not evict the other's
        # cached plan.
        pos = [(0.0, 0.0), (150.0, 0.0), (50_000.0, 0.0), (50_150.0, 0.0)]
        ch = _make_channel(pos)
        p = PhyConfig().tx_power_w
        ch._dispatch_plan(0, p)
        ch._dispatch_plan(2, p)
        assert len(ch._dispatch_cache) == 2
        ch.set_position(3, (50_140.0, 10.0))
        assert (0, p) in ch._dispatch_cache      # far cluster untouched
        assert (2, p) not in ch._dispatch_cache  # mover's neighbourhood stale

    def test_near_move_invalidates_dependent_plan(self):
        pos = [(0.0, 0.0), (150.0, 0.0), (400.0, 0.0)]
        ch = _make_channel(pos)
        p = PhyConfig().tx_power_w
        before = _plan_signature(ch, 0, p)
        ch.set_position(1, (151.0, 0.0))  # intra-neighbourhood (maybe intra-cell)
        after = _plan_signature(ch, 0, p)
        assert before[0] == after[0]
        assert before[1] != after[1]  # rx power at node 1 changed

    def test_heterogeneous_power_keys_do_not_alias(self):
        pos = [(0.0, 0.0), (150.0, 0.0)]
        ch = _make_channel(pos)
        p = PhyConfig().tx_power_w
        _, pw_lo, _ = ch._dispatch_plan(0, p)
        _, pw_hi, _ = ch._dispatch_plan(0, p / 2)
        assert (0, p) in ch._dispatch_cache and (0, p / 2) in ch._dispatch_cache
        assert pw_hi[0] == pytest.approx(pw_lo[0] / 2)

    def test_power_above_grid_sizing_rebuilds(self):
        pos = [(0.0, 0.0), (150.0, 0.0)]
        ch = _make_channel(pos)
        p = PhyConfig().tx_power_w
        ch._dispatch_plan(0, p)
        sized = ch._grid_power_w
        ch._dispatch_plan(0, 4 * p)
        assert ch._grid_power_w == 4 * p > sized

    def test_move_many_batches(self):
        pos = _random_layout(30, 2000.0, 13)
        spatial = _make_channel(pos)
        exact = _make_channel(pos, spatial_index=False)
        rng = np.random.default_rng(17)
        p = PhyConfig().tx_power_w
        for _ in range(5):
            updates = [
                (int(nid), tuple(rng.uniform(0.0, 2000.0, size=2)))
                for nid in rng.integers(30, size=6)
            ]
            spatial.move_many(updates)
            exact.move_many(updates)
            for tx in range(0, 30, 5):
                assert _plan_signature(spatial, tx, p) == \
                    _plan_signature(exact, tx, p)


def _result_blob(config: ScenarioConfig) -> str:
    r = run_scenario(config)
    blob = dict(r.as_dict())
    blob["per_node_forwarded"] = r.per_node_forwarded.tolist()
    blob["packets_sent"] = r.packets_sent
    blob["packets_received"] = r.packets_received
    blob["events_executed"] = r.events_executed
    blob["totals"] = r.totals
    return json.dumps(blob, sort_keys=True)


class TestCrossPathDeterminism:
    """run_scenario is byte-identical with the spatial index on and off."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("mobility", ["static", "rwp"])
    def test_run_scenario_identical(self, seed, mobility):
        base = ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
            flow_rate_pps=4.0, sim_time_s=6.0, warmup_s=1.0, seed=seed,
            mobility=mobility, speed_range=(2.0, 8.0), pause_s=0.5,
        )
        spatial = _result_blob(replace(base, spatial_index=True))
        exact = _result_blob(replace(base, spatial_index=False))
        assert spatial == exact
