"""Tests for the DSDV proactive baseline."""

import pytest

from repro.net.dsdv import DsdvConfig, DsdvHeader, DsdvRouting, INFINITE_METRIC

from tests.conftest import chain_adjacency, make_perfect_net, DIAMOND


def dsdv_factory(config=None):
    def make(node_id, streams):
        return DsdvRouting(
            config or DsdvConfig(update_interval_s=0.5, route_lifetime_s=2.0),
            streams.stream(f"routing.{node_id}"),
        )

    return make


def converged_net(adjacency, settle_s=2.5, seed=1, config=None):
    sim, stacks = make_perfect_net(adjacency, dsdv_factory(config), seed=seed)
    for s in stacks:
        s.start()
    sim.run(until=settle_s)
    return sim, stacks


class TestConvergence:
    def test_tables_converge_on_chain(self):
        sim, stacks = converged_net(chain_adjacency(5))
        # every node knows every other node
        for s in stacks:
            assert s.routing.table_size() == 4

    def test_metrics_are_hop_counts(self):
        sim, stacks = converged_net(chain_adjacency(5))
        r0 = stacks[0].routing
        for dst in range(1, 5):
            assert r0.route_to(dst).metric == dst

    def test_next_hops_follow_chain(self):
        sim, stacks = converged_net(chain_adjacency(4))
        assert stacks[0].routing.route_to(3).next_hop == 1
        assert stacks[3].routing.route_to(0).next_hop == 2

    def test_diamond_prefers_shorter_branch(self):
        sim, stacks = converged_net(DIAMOND)
        # 0's route to 4: via 1 (2 hops) not via 2 (3 hops)
        assert stacks[0].routing.route_to(4).metric == 2


class TestDataPlane:
    def test_end_to_end_delivery(self):
        sim, stacks = converged_net(chain_adjacency(5))
        got = []
        stacks[4].receive_callback = got.append
        stacks[0].send_data(dst=4, payload_bytes=64, seq=0)
        sim.run(until=4.0)
        assert len(got) == 1
        assert got[0].hops == 4

    def test_no_route_before_convergence(self):
        sim, stacks = make_perfect_net(chain_adjacency(4), dsdv_factory())
        # nodes never started → no updates → no routes
        stacks[0].send_data(dst=3, payload_bytes=64)
        sim.run(until=1.0)
        assert stacks[0].routing.data_dropped_no_route == 1

    def test_loopback(self):
        sim, stacks = converged_net(chain_adjacency(2))
        got = []
        stacks[0].receive_callback = got.append
        stacks[0].send_data(dst=0, payload_bytes=8)
        sim.run(until=3.0)
        assert len(got) == 1


class TestSequenceNumbersAndBreaks:
    def test_own_seqno_stays_even(self):
        sim, stacks = converged_net(chain_adjacency(3))
        assert stacks[0].routing.seqno % 2 == 0

    def test_link_break_poisons_routes(self):
        adj = chain_adjacency(4)
        sim, stacks = converged_net(adj)
        got = []
        stacks[3].receive_callback = got.append
        # sever 1-2 (PerfectMac reads adjacency live)
        adj[1] = [0]
        adj[2] = [3]
        stacks[0].send_data(dst=3, payload_bytes=8, seq=1)
        sim.run(until=4.0)
        # node 1 detected the failure and invalidated its route via 2
        r1 = stacks[1].routing
        e = r1._routes.get(3)
        assert e is None or e.metric >= INFINITE_METRIC or e.next_hop != 2

    def test_triggered_update_on_break(self):
        adj = chain_adjacency(3)
        cfg = DsdvConfig(update_interval_s=5.0, route_lifetime_s=20.0,
                         triggered_updates=True)
        sim, stacks = make_perfect_net(adj, dsdv_factory(cfg))
        for s in stacks:
            s.start()
        sim.run(until=1.0)
        adj[1] = [0]
        adj[2] = []
        stacks[1].send_data(dst=2, payload_bytes=8)
        sim.run(until=3.0)
        assert stacks[1].routing.triggered_tx >= 1


class TestOverheadAccounting:
    def test_updates_counted_as_control(self):
        sim, stacks = converged_net(chain_adjacency(3), settle_s=3.0)
        r = stacks[0].routing
        assert r.updates_tx >= 5
        assert r.control_tx["hello"] == r.updates_tx
        assert r.control_bytes_tx > 0

    def test_header_size_scales(self):
        h = DsdvHeader(entries=[(1, 2, 4), (2, 1, 6)])
        assert h.size_bytes() == 12 + 16


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            DsdvConfig(update_interval_s=0.0)
        with pytest.raises(ValueError):
            DsdvConfig(update_interval_s=5.0, route_lifetime_s=1.0)


class TestScenarioIntegration:
    def test_dsdv_scenario_end_to_end(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import ScenarioConfig

        r = run_scenario(
            ScenarioConfig(
                protocol="dsdv", grid_nx=3, grid_ny=3, n_flows=2,
                sim_time_s=15.0, warmup_s=6.0, seed=3,
            )
        )
        assert r.pdr > 0.9
        # proactive: control traffic flows even with two tiny flows
        assert r.totals["hello_tx"] > 9 * 2
