"""Parameter spaces, dimensions, designs, and config binding."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dse import (
    CategoricalDim,
    ContinuousDim,
    IntegerDim,
    ParameterSpace,
    full_factorial,
    latin_hypercube,
    point_key,
    seeded_rng,
)
from repro.dse.cli import EXAMPLE_SPACE
from repro.experiments.scenario import ScenarioConfig


def small_space() -> ParameterSpace:
    return ParameterSpace(
        "t",
        [
            ContinuousDim("gamma", "nlr.gamma", 0.0, 1.0),
            IntegerDim("rerr", "aodv.rerr_rate_limit_per_s", 0, 20),
            CategoricalDim("traffic", "traffic", ("cbr", "poisson")),
        ],
    )


class TestDimensions:
    def test_continuous_bounds_validated(self):
        with pytest.raises(ValueError, match="low < high"):
            ContinuousDim("x", "nlr.gamma", 1.0, 0.0)
        with pytest.raises(ValueError, match="low < high"):
            ContinuousDim("x", "nlr.gamma", 0.0, float("inf"))

    def test_integer_bounds_validated(self):
        with pytest.raises(ValueError, match="integer low < high"):
            IntegerDim("x", "f", 5, 5)

    def test_categorical_needs_two_distinct_choices(self):
        with pytest.raises(ValueError, match="≥ 2 choices"):
            CategoricalDim("x", "f", ("only",))
        with pytest.raises(ValueError, match="duplicate"):
            CategoricalDim("x", "f", ("a", "a"))

    def test_clip(self):
        assert ContinuousDim("x", "f", 0.0, 1.0).clip(7.3) == 1.0
        assert IntegerDim("x", "f", 0, 10).clip(3.7) == 4
        with pytest.raises(ValueError, match="not among"):
            CategoricalDim("x", "f", ("a", "b")).clip("c")

    def test_mutation_stays_in_bounds_and_changes_categorical(self):
        rng = seeded_rng(1, 9, 9)
        c = ContinuousDim("x", "f", 0.0, 1.0)
        i = IntegerDim("y", "f2", 0, 3)
        k = CategoricalDim("z", "f3", ("a", "b"))
        for _ in range(200):
            assert 0.0 <= c.mutate(0.5, rng, 0.5) <= 1.0
            assert 0 <= i.mutate(2, rng, 0.5) <= 3
            assert k.mutate("a", rng, 0.5) == "b"

    def test_integer_mutation_never_noop_step(self):
        # Even tiny sigma must move the value (clip can still pin it).
        rng = seeded_rng(2, 9, 9)
        d = IntegerDim("y", "f", 0, 100)
        assert all(d.mutate(50, rng, 0.01) != 50 for _ in range(50))

    def test_levels(self):
        assert ContinuousDim("x", "f", 0.0, 1.0).levels(3) == [0.0, 0.5, 1.0]
        assert IntegerDim("x", "f", 0, 2).levels(5) == [0, 1, 2]
        assert CategoricalDim("x", "f", ("a", "b")).levels(99) == ["a", "b"]

    def test_normalize(self):
        assert ContinuousDim("x", "f", 0.0, 2.0).normalize(1.0) == [0.5]
        assert CategoricalDim("x", "f", ("a", "b")).normalize("b") == [0.0, 1.0]


class TestParameterSpace:
    def test_rejects_duplicates_and_empty(self):
        d = ContinuousDim("x", "nlr.gamma", 0.0, 1.0)
        with pytest.raises(ValueError, match="no dimensions"):
            ParameterSpace("s", [])
        with pytest.raises(ValueError, match="duplicate dimension"):
            ParameterSpace("s", [d, ContinuousDim("x", "nlr.p_min", 0.1, 1.0)])
        with pytest.raises(ValueError, match="same field"):
            ParameterSpace("s", [d, ContinuousDim("y", "nlr.gamma", 0.0, 1.0)])

    def test_json_round_trip(self):
        space = small_space()
        again = ParameterSpace.from_dict(
            json.loads(json.dumps(space.to_dict()))
        )
        assert again.to_dict() == space.to_dict()

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown space keys"):
            ParameterSpace.from_dict({"name": "s", "dimensions": [], "bogus": 1})
        with pytest.raises(ValueError, match="unknown type"):
            ParameterSpace.from_dict(
                {"name": "s", "dimensions": [{"name": "x", "field": "f",
                                             "type": "complex"}]}
            )

    def test_example_space_parses(self):
        space = ParameterSpace.from_dict(EXAMPLE_SPACE)
        assert len(space) == 6

    def test_validate_point_checks_membership(self):
        space = small_space()
        good = {"gamma": 0.5, "rerr": 3, "traffic": "cbr"}
        assert space.validate_point(good) == good
        with pytest.raises(ValueError, match="unknown dimensions"):
            space.validate_point({**good, "extra": 1})
        with pytest.raises(ValueError, match="missing dimensions"):
            space.validate_point({"gamma": 0.5})

    def test_bind_produces_validated_config(self):
        space = small_space()
        base = ScenarioConfig(protocol="nlr", seed=3)
        cfg = space.bind(base, {"gamma": 0.25, "rerr": 7, "traffic": "poisson"})
        assert cfg.nlr.gamma == 0.25
        assert cfg.aodv.rerr_rate_limit_per_s == 7
        assert cfg.traffic == "poisson"
        assert cfg.seed == 3
        # The base config is untouched.
        assert base.nlr.gamma != 0.25 or base.traffic == "cbr"

    def test_bind_rejects_bad_field_path(self):
        base = ScenarioConfig()
        space = ParameterSpace(
            "s",
            [ContinuousDim("x", "nlr.not_a_field", 0.0, 1.0),
             ContinuousDim("y", "nlr.gamma", 0.0, 1.0)],
        )
        with pytest.raises(ValueError, match="no field"):
            space.bind(base, {"x": 0.5, "y": 0.5})
        space2 = ParameterSpace(
            "s", [ContinuousDim("x", "nope.deep.path", 0.0, 1.0)]
        )
        with pytest.raises(ValueError, match="no nested section"):
            space2.bind(base, {"x": 0.5})

    def test_bind_runs_config_validation(self):
        # gamma bounds come from NlrConfig itself — a space declared wider
        # than the config's legal range cannot smuggle bad values through.
        space = ParameterSpace(
            "s", [ContinuousDim("w", "nlr.ewma_alpha", 0.0, 1.0)]
        )
        with pytest.raises(ValueError, match="ewma_alpha"):
            space.bind(ScenarioConfig(), {"w": 0.0})

    def test_crossover_mixes_parents(self):
        space = small_space()
        a = {"gamma": 0.0, "rerr": 0, "traffic": "cbr"}
        b = {"gamma": 1.0, "rerr": 20, "traffic": "poisson"}
        rng = seeded_rng(3, 9, 9)
        children = [space.crossover(a, b, rng) for _ in range(50)]
        assert any(c != a and c != b for c in children)
        for c in children:
            for name in c:
                assert c[name] in (a[name], b[name])

    def test_point_key_is_order_insensitive(self):
        assert point_key({"a": 1, "b": 2.5}) == point_key({"b": 2.5, "a": 1})


class TestDesigns:
    def test_full_factorial_size_and_determinism(self):
        space = small_space()
        design = full_factorial(space, levels=3)
        # 3 continuous levels × 3 integer levels × 2 choices.
        assert len(design) == 3 * 3 * 2
        assert design == full_factorial(space, levels=3)
        keys = {point_key(p) for p in design}
        assert len(keys) == len(design)

    def test_latin_hypercube_stratification(self):
        space = small_space()
        n = 10
        design = latin_hypercube(space, n, seeded_rng(5, 9, 9))
        assert len(design) == n
        # One gamma sample per 1/n stratum.
        strata = sorted(int(p["gamma"] * n) for p in design)
        assert strata == list(range(n))
        # Categoricals balanced within one.
        counts = {c: sum(1 for p in design if p["traffic"] == c)
                  for c in ("cbr", "poisson")}
        assert abs(counts["cbr"] - counts["poisson"]) <= 1

    def test_latin_hypercube_deterministic_per_seed(self):
        space = small_space()
        a = latin_hypercube(space, 8, seeded_rng(7, 0, 0))
        b = latin_hypercube(space, 8, seeded_rng(7, 0, 0))
        c = latin_hypercube(space, 8, seeded_rng(8, 0, 0))
        assert a == b
        assert a != c

    def test_design_points_bind_cleanly(self):
        space = ParameterSpace.from_dict(EXAMPLE_SPACE)
        base = ScenarioConfig(protocol="nlr")
        for p in full_factorial(space, levels=2):
            space.bind(base, p)  # must not raise
