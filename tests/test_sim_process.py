"""Unit tests for timers and periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import SchedulingError
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_once_after_delay(self):
        sim = Simulator()
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(3.0)
        sim.run()
        assert hits == [3.0]
        assert not t.running

    def test_start_while_running_raises(self):
        sim = Simulator()
        t = Timer(sim, lambda: None)
        t.start(1.0)
        with pytest.raises(SchedulingError):
            t.start(2.0)

    def test_restart_moves_deadline(self):
        sim = Simulator()
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(1.0)
        t.restart(5.0)
        sim.run()
        assert hits == [5.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        hits = []
        t = Timer(sim, hits.append, "x")
        t.start(1.0)
        t.cancel()
        sim.run()
        assert hits == []

    def test_cancel_idle_is_noop(self):
        sim = Simulator()
        t = Timer(sim, lambda: None)
        t.cancel()  # no exception

    def test_expiry_property(self):
        sim = Simulator()
        t = Timer(sim, lambda: None)
        assert t.expiry is None
        t.start(2.0)
        assert t.expiry == 2.0

    def test_timer_restartable_from_callback(self):
        sim = Simulator()
        hits = []

        def fire():
            hits.append(sim.now)
            if len(hits) < 3:
                t.start(1.0)

        t = Timer(sim, fire)
        t.start(1.0)
        sim.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_args_passed(self):
        sim = Simulator()
        got = []
        t = Timer(sim, lambda a, b: got.append((a, b)), 1, 2)
        t.start(0.5)
        sim.run()
        assert got == [(1, 2)]


class TestPeriodicProcess:
    def test_fires_at_period(self):
        sim = Simulator()
        hits = []
        p = PeriodicProcess(sim, 1.0, lambda: hits.append(sim.now))
        p.start()
        sim.run(until=3.5)
        assert hits == [1.0, 2.0, 3.0]
        assert p.firings == 3

    def test_initial_delay_override(self):
        sim = Simulator()
        hits = []
        p = PeriodicProcess(sim, 1.0, lambda: hits.append(sim.now))
        p.start(initial_delay=0.25)
        sim.run(until=2.5)
        assert hits == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        hits = []
        p = PeriodicProcess(sim, 1.0, lambda: hits.append(sim.now))
        p.start()
        sim.run(until=2.0)
        p.stop()
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_callback_can_stop_cycle(self):
        sim = Simulator()
        hits = []

        def fire():
            hits.append(sim.now)
            if len(hits) == 2:
                p.stop()

        p = PeriodicProcess(sim, 1.0, fire)
        p.start()
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            PeriodicProcess(sim, 0.0, lambda: None)

    def test_jitter_applies_within_bounds(self):
        sim = Simulator()
        hits = []
        p = PeriodicProcess(sim, 1.0, lambda: hits.append(sim.now),
                            jitter_fn=lambda: 0.25)
        p.start()
        sim.run(until=4.0)
        # first firing at period+jitter, each subsequent gap period+jitter
        assert hits[0] == pytest.approx(1.25)
        gaps = [b - a for a, b in zip(hits, hits[1:])]
        assert all(g == pytest.approx(1.25) for g in gaps)

    def test_out_of_range_jitter_rejected(self):
        sim = Simulator()
        p = PeriodicProcess(sim, 1.0, lambda: None, jitter_fn=lambda: 1.5)
        with pytest.raises(SchedulingError):
            p.start()
            sim.run(until=5.0)

    def test_double_start_rejected(self):
        sim = Simulator()
        p = PeriodicProcess(sim, 1.0, lambda: None)
        p.start()
        with pytest.raises(SchedulingError):
            p.start()
