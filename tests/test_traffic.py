"""Tests for flow specs, traffic sources, and sinks."""

import numpy as np
import pytest

from repro.net.static_routing import RouteOracle, StaticRouting
from repro.traffic.flows import FlowSpec, gateway_flows, random_flow_pairs
from repro.traffic.generators import CbrSource, OnOffSource, PoissonSource
from repro.traffic.sink import PacketSink

from tests.conftest import chain_adjacency, make_perfect_net

import networkx as nx


def two_node_net():
    g = nx.Graph()
    g.add_edge(0, 1)
    oracle = RouteOracle(g)
    return make_perfect_net(
        chain_adjacency(2), lambda nid, streams: StaticRouting(oracle)
    )


class TestFlowSpec:
    def test_offered_load(self):
        f = FlowSpec(flow_id=0, src=0, dst=1, payload_bytes=512, rate_pps=4.0)
        assert f.offered_bps == 512 * 8 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, src=1, dst=1)
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, src=0, dst=1, rate_pps=0.0)
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, src=0, dst=1, start_s=5.0, stop_s=5.0)


class TestFlowSamplers:
    def test_random_pairs_distinct_endpoints(self):
        rng = np.random.default_rng(1)
        flows = random_flow_pairs(20, list(range(10)), rng)
        assert all(f.src != f.dst for f in flows)
        assert [f.flow_id for f in flows] == list(range(20))

    def test_random_pairs_staggered_starts(self):
        rng = np.random.default_rng(1)
        flows = random_flow_pairs(5, list(range(10)), rng, start_s=1.0,
                                  stagger_s=0.5)
        assert [f.start_s for f in flows] == [1.0, 1.5, 2.0, 2.5, 3.0]

    def test_gateway_flows_endpoints(self):
        rng = np.random.default_rng(2)
        flows = gateway_flows(
            10, list(range(10)), gateways=[0], rng=rng, upstream_fraction=1.0
        )
        assert all(f.dst == 0 and f.src != 0 for f in flows)

    def test_gateway_downstream_fraction(self):
        rng = np.random.default_rng(2)
        flows = gateway_flows(
            30, list(range(10)), gateways=[0], rng=rng, upstream_fraction=0.0
        )
        assert all(f.src == 0 for f in flows)

    def test_gateway_needs_non_gateway_nodes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gateway_flows(1, [0], gateways=[0], rng=rng)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_flow_pairs(0, [0, 1], rng)
        with pytest.raises(ValueError):
            random_flow_pairs(1, [0], rng)


class TestCbrSource:
    def test_constant_rate(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=0, dst=1, rate_pps=10.0,
                        start_s=1.0, stop_s=3.0)
        sent = []
        src = CbrSource(sim, stacks[0], flow, on_send=sent.append)
        src.start()
        sim.run(until=5.0)
        # 10 pps over [1.0, 3.0): t = 1.0, 1.1, ..., 2.9
        assert len(sent) == 20
        assert sent[0].created_at == pytest.approx(1.0)
        assert [p.seq for p in sent] == list(range(20))

    def test_stop_silences(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=0, dst=1, rate_pps=10.0, start_s=0.5)
        sent = []
        src = CbrSource(sim, stacks[0], flow, on_send=sent.append)
        src.start()
        sim.run(until=1.0)
        src.stop()
        count = len(sent)
        sim.run(until=3.0)
        assert len(sent) == count

    def test_wrong_stack_rejected(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=1, dst=0)
        with pytest.raises(ValueError):
            CbrSource(sim, stacks[0], flow)


class TestPoissonSource:
    def test_mean_rate_approximate(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=0, dst=1, rate_pps=50.0,
                        start_s=0.0, stop_s=20.0)
        sent = []
        src = PoissonSource(
            sim, stacks[0], flow, np.random.default_rng(3), on_send=sent.append
        )
        src.start()
        sim.run(until=20.0)
        assert len(sent) == pytest.approx(1000, rel=0.15)

    def test_gaps_vary(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=0, dst=1, rate_pps=20.0, stop_s=10.0)
        sent = []
        src = PoissonSource(
            sim, stacks[0], flow, np.random.default_rng(3), on_send=sent.append
        )
        src.start()
        sim.run(until=10.0)
        gaps = {round(b.created_at - a.created_at, 6)
                for a, b in zip(sent, sent[1:])}
        assert len(gaps) > 10


class TestOnOffSource:
    def test_bursts_and_silences(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=0, dst=1, rate_pps=100.0,
                        start_s=0.0, stop_s=30.0)
        sent = []
        src = OnOffSource(
            sim, stacks[0], flow, np.random.default_rng(4),
            on_mean_s=0.5, off_mean_s=0.5, on_send=sent.append,
        )
        src.start()
        sim.run(until=30.0)
        # mean rate ≈ 100 · 0.5 = 50 pps → ~1500 packets; loose bounds
        assert 500 < len(sent) < 2500
        gaps = [b.created_at - a.created_at for a, b in zip(sent, sent[1:])]
        assert max(gaps) > 0.1  # silences exist
        assert min(gaps) == pytest.approx(0.01, abs=1e-6)  # in-burst CBR

    def test_validation(self):
        sim, stacks = two_node_net()
        flow = FlowSpec(flow_id=0, src=0, dst=1)
        with pytest.raises(ValueError):
            OnOffSource(sim, stacks[0], flow, np.random.default_rng(0),
                        on_mean_s=0.0)


class TestPacketSink:
    def test_counts_and_forwards(self):
        sim, stacks = two_node_net()
        got = []
        sink = PacketSink(stacks[1], on_receive=got.append)
        # stop at 0.95 s: emissions land at 0.0 .. 0.9 exactly, with no
        # float-accumulation ambiguity at the boundary
        flow = FlowSpec(flow_id=0, src=0, dst=1, rate_pps=10.0,
                        start_s=0.0, stop_s=0.95)
        CbrSource(sim, stacks[0], flow).start()
        sim.run(until=2.0)
        assert sink.received == 10
        assert sink.bytes_received == 10 * 512
        assert len(got) == 10
