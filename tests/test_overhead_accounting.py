"""Tests that control-overhead byte accounting is honest per scheme.

The NLR contribution adds a 4-byte load field to RREQ and HELLO; these
tests pin down that the accounting actually charges it (so overhead
figures cannot silently flatter the contribution).
"""

import pytest

from repro.core.nlr import NlrConfig, NlrRouting
from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.packet import HelloHeader, Packet, PacketKind, RreqHeader

from tests.conftest import chain_adjacency, make_perfect_net


def build(protocol_factory):
    sim, stacks = make_perfect_net(chain_adjacency(3), protocol_factory)
    for s in stacks:
        s.start()
    return sim, stacks


def aodv(node_id, streams):
    return AodvRouting(
        AodvConfig(hello_enabled=False), streams.stream(f"r{node_id}")
    )


def nlr(node_id, streams):
    cfg = NlrConfig()
    cfg.aodv.hello_enabled = False
    return NlrRouting(cfg, streams.stream(f"r{node_id}"))


class TestLoadExtensionBytes:
    def test_aodv_rreq_is_24_bytes(self):
        sim, stacks = build(aodv)
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=0.01)  # only the origination has happened
        assert stacks[0].routing.control_bytes_tx == 24

    def test_nlr_rreq_is_28_bytes(self):
        sim, stacks = build(nlr)
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=0.01)
        assert stacks[0].routing.control_bytes_tx == 28

    def test_hello_extension_charged(self):
        def nlr_hello(node_id, streams):
            cfg = NlrConfig()
            cfg.aodv.hello_interval_s = 0.5
            return NlrRouting(cfg, streams.stream(f"r{node_id}"))

        sim, stacks = make_perfect_net(chain_adjacency(2), nlr_hello)
        for s in stacks:
            s.start()
        sim.run(until=2.0)
        r = stacks[0].routing
        hello_count = r.control_tx["hello"]
        assert hello_count >= 2
        # every control byte so far is HELLO at 24 B (20 + 4 extension)
        assert r.control_bytes_tx == hello_count * 24

    def test_wire_bytes_header_dispatch(self):
        rreq = Packet(
            kind=PacketKind.RREQ, src=0, dst=-1, ttl=8,
            header=RreqHeader(rreq_id=1, origin=0, origin_seq=1, dst=5),
        )
        hello = Packet(
            kind=PacketKind.HELLO, src=0, dst=-1, ttl=1, header=HelloHeader()
        )
        assert rreq.wire_bytes(False) == 24
        assert rreq.wire_bytes(True) == 28
        assert hello.wire_bytes(False) == 20
        assert hello.wire_bytes(True) == 24


class TestRrepEchoesCost:
    def test_rrep_carries_path_load(self):
        sim, stacks = build(nlr)
        # pin some load on the middle node so path_load is visible
        from tests.test_core_nlr import FakeLoadSource

        stacks[1].routing.bus.source = FakeLoadSource(queue=0.8)
        for _ in range(10):
            stacks[1].routing.bus.sample_now()
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=2.0)
        route = stacks[0].routing.table.lookup(2)
        assert route is not None
        assert route.cost > 0.0
