"""Edge-case tests for radio reception internals (SINR segmentation)."""

import pytest

from repro.phy.channel import Channel
from repro.phy.error_models import (
    ErrorModel,
    PskErrorModel,
    SinrThresholdErrorModel,
)
from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio, RadioState
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class RecordingErrorModel(ErrorModel):
    """Captures the SINR segments the radio computed."""

    def __init__(self):
        self.frames: list[list[tuple[float, int]]] = []

    def segment_success_probability(self, sinr, bits):
        return 1.0

    def frame_success_probability(self, segments):
        self.frames.append(list(segments))
        return 1.0


def make(positions, error_model=None, capture=True):
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False)
    rs = RandomStreams(2)
    radios = []
    for i, pos in enumerate(positions):
        r = Radio(
            sim, i, PhyConfig(capture_enabled=capture), rs.stream(f"p{i}"),
            error_model=error_model or SinrThresholdErrorModel(),
        )
        ch.register(r, pos)
        radios.append(r)
    return sim, ch, radios


def frame(tx, bits=8000):
    cfg = PhyConfig()
    return PhyFrame(
        payload=f"p{tx}", bits=bits, rate_bps=11e6, preamble_s=192e-6,
        tx_power_w=cfg.tx_power_w, tx_node=tx,
    )


class TestSinrSegmentation:
    def test_clean_reception_single_segment(self):
        model = RecordingErrorModel()
        sim, ch, radios = make([(0, 0), (150, 0)], error_model=model)
        radios[0].transmit(frame(0))
        sim.run()
        assert len(model.frames) == 1
        segments = model.frames[0]
        assert len(segments) == 1
        sinr, bits = segments[0]
        assert sinr > 1e3  # clean channel, noise-limited
        assert bits == pytest.approx(8000, rel=0.01)

    def test_partial_overlap_creates_segments(self):
        model = RecordingErrorModel()
        # interferer far enough that the lock survives (SINR high) but
        # close enough to register as interference
        sim, ch, radios = make([(0, 0), (150, 0), (900, 0)], error_model=model)
        f0 = frame(1)
        sim.schedule(0.0, radios[1].transmit, f0)
        # interferer starts mid-frame
        sim.schedule(f0.duration_s / 2, radios[2].transmit, frame(2))
        sim.run()
        receiver_frames = [s for s in model.frames if len(s) >= 2]
        assert receiver_frames, "expected a segmented reception"
        segs = receiver_frames[0]
        # second segment has lower SINR than the first
        assert segs[1][0] < segs[0][0]
        # bits partition the frame
        assert sum(b for _, b in segs) == pytest.approx(8000, rel=0.02)

    def test_min_sinr_reported(self):
        got = []
        sim, ch, radios = make([(0, 0), (150, 0), (900, 0)])
        radios[0].rx_callback = lambda p, info: got.append(info)
        f1 = frame(1)
        sim.schedule(0.0, radios[1].transmit, f1)
        sim.schedule(f1.duration_s / 2, radios[2].transmit, frame(2))
        sim.run()
        assert len(got) == 1
        # min SINR reflects the interfered segment, not the clean one
        clean_sinr = radios[0].config.tx_power_w  # just a sanity anchor
        assert got[0].min_sinr < 1e6

    def test_probabilistic_error_model_drops_some(self):
        # PSK at a marginal SINR: repeated receptions must show both
        # successes and failures (Bernoulli sampling in the radio).
        sim, ch, radios = make(
            [(0, 0), (245, 0)], error_model=PskErrorModel(1)
        )
        ok = []
        radios[1].rx_callback = lambda p, info: ok.append(1)
        # At 245 m, rx power ≈ threshold; with noise floor of the config,
        # SINR is huge, so lower tx power instead to hit marginal BER.
        weak = PhyFrame(
            payload="w", bits=8000, rate_bps=11e6, preamble_s=192e-6,
            tx_power_w=PhyConfig().tx_power_w, tx_node=0,
        )
        for k in range(30):
            sim.schedule(k * 0.01, radios[0].transmit, weak.__class__(
                payload="w", bits=8000, rate_bps=11e6, preamble_s=192e-6,
                tx_power_w=weak.tx_power_w, tx_node=0,
            ))
        sim.run()
        assert 0 < len(ok) <= 30


class TestRadioStateMachine:
    def test_state_transitions_clean_exchange(self):
        sim, ch, radios = make([(0, 0), (150, 0)])
        assert radios[0].state is RadioState.IDLE
        radios[0].transmit(frame(0))
        assert radios[0].state is RadioState.TX
        sim.run()
        assert radios[0].state is RadioState.IDLE
        assert radios[1].state is RadioState.IDLE

    def test_counters(self):
        sim, ch, radios = make([(0, 0), (150, 0)])
        radios[0].transmit(frame(0))
        sim.run()
        assert radios[0].frames_sent == 1
        assert radios[1].frames_received == 1
        assert radios[1].frames_corrupted == 0

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            PhyFrame(payload=None, bits=0, rate_bps=1e6, preamble_s=0.0,
                     tx_power_w=1.0, tx_node=0)
        with pytest.raises(ValueError):
            PhyFrame(payload=None, bits=100, rate_bps=0.0, preamble_s=0.0,
                     tx_power_w=1.0, tx_node=0)
        with pytest.raises(ValueError):
            PhyFrame(payload=None, bits=100, rate_bps=1e6, preamble_s=-1.0,
                     tx_power_w=1.0, tx_node=0)
        with pytest.raises(ValueError):
            PhyFrame(payload=None, bits=100, rate_bps=1e6, preamble_s=0.0,
                     tx_power_w=0.0, tx_node=0)

    def test_phy_config_validation(self):
        with pytest.raises(ValueError):
            PhyConfig(tx_power_w=0.0)
        with pytest.raises(ValueError):
            PhyConfig(cs_threshold_w=1.0, rx_threshold_w=0.5)
        with pytest.raises(ValueError):
            PhyConfig(capture_ratio=0.5)
        with pytest.raises(ValueError):
            PhyConfig(noise_floor_w=0.0)

    def test_frame_duration(self):
        f = PhyFrame(payload=None, bits=11_000, rate_bps=11e6,
                     preamble_s=192e-6, tx_power_w=1.0, tx_node=0)
        assert f.duration_s == pytest.approx(192e-6 + 1e-3)
