"""Tests for the ASCII chart renderer and its report integration."""

import math

import pytest

from repro.metrics.asciichart import line_chart


class TestLineChart:
    def test_basic_rendering(self):
        out = line_chart([0, 1, 2], {"a": [0.0, 0.5, 1.0]}, width=20, height=6)
        assert "o" in out
        assert "o=a" in out
        assert "+" + "-" * 20 in out

    def test_multiple_series_distinct_glyphs(self):
        out = line_chart(
            [0, 1, 2],
            {"a": [0, 1, 2], "b": [2, 1, 0]},
            width=20, height=6,
        )
        assert "o=a" in out and "x=b" in out
        assert "x" in out.splitlines()[0] or "x" in out

    def test_title_and_labels(self):
        out = line_chart([0, 1, 2], {"s": [1, 2, 3]}, width=20, height=6,
                         title="T", y_label="y", x_label="x")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert any("y |" in ln for ln in lines)
        assert "x" in lines[-2]

    def test_y_extremes_labelled(self):
        out = line_chart([0, 1], {"s": [5.0, 10.0]}, width=20, height=6)
        assert "10" in out and "5" in out

    def test_nan_points_skipped(self):
        out = line_chart(
            [0, 1, 2], {"s": [1.0, math.nan, 3.0]}, width=20, height=6
        )
        assert out.count("o") >= 2  # two finite points (+ legend glyph)

    def test_flat_series_no_crash(self):
        out = line_chart([0, 1, 2], {"s": [4.0, 4.0, 4.0]}, width=20, height=6)
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([], {"s": []})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([0], {}, width=20)
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1, 2]}, width=5, height=2)
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [math.nan, math.nan]})
        with pytest.raises(ValueError):
            line_chart(
                [0, 1],
                {chr(97 + i): [0, 1] for i in range(9)},  # 9 series > glyphs
            )


class TestFigureCharts:
    def test_numeric_figure_produces_charts(self):
        from repro.experiments.figures import FigureResult
        from repro.experiments.report import figure_charts

        fig = FigureResult(
            name="figX", title="t",
            headers=["rate", "aodv_pdr", "nlr_pdr"],
            rows=[[10, 1.0, 1.0], [20, 0.9, 0.95], [30, 0.7, 0.8]],
        )
        charts = figure_charts(fig)
        assert len(charts) == 1
        assert "aodv" in charts[0] and "nlr" in charts[0]

    def test_categorical_figure_produces_none(self):
        from repro.experiments.figures import FigureResult
        from repro.experiments.report import figure_charts

        fig = FigureResult(
            name="t2", title="t",
            headers=["protocol", "pdr"],
            rows=[["aodv", 0.9], ["nlr", 0.95], ["oracle", 0.97]],
        )
        assert figure_charts(fig) == []

    def test_short_series_skipped(self):
        from repro.experiments.figures import FigureResult
        from repro.experiments.report import figure_charts

        fig = FigureResult(
            name="t3", title="t",
            headers=["rate", "a_pdr", "b_pdr"],
            rows=[[1, 0.5, 0.6], [2, 0.4, 0.5]],
        )
        assert figure_charts(fig) == []
