"""Smoke tests for the runnable examples (the fast ones)."""

import importlib.util
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_adaptive_rerouting_runs(capsys):
    mod = load_example("adaptive_rerouting")
    mod.main()
    out = capsys.readouterr().out
    assert "hotspot moves" in out
    assert "0-2-3-4 (long)" in out      # detoured while node 1 was hot
    assert "0-1-4 (short)" in out       # returned after the swap
    assert "delivered 70/70" in out     # no loss across both switches


def test_examples_are_syntactically_valid():
    # Compile every example without executing (the slow ones run minutes).
    import py_compile

    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        py_compile.compile(str(script), doraise=True)


def test_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), script
        assert 'def main()' in text, script
        assert '__main__' in text, script
