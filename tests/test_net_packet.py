"""Unit tests for packet formats and addressing."""

import pytest

from repro.net.addressing import BROADCAST_ADDR, is_valid_address
from repro.net.packet import (
    HelloHeader,
    IP_HEADER_BYTES,
    Packet,
    PacketKind,
    RerrHeader,
    RrepHeader,
    RreqHeader,
)


class TestAddressing:
    def test_valid_addresses(self):
        assert is_valid_address(0)
        assert is_valid_address(17)
        assert is_valid_address(BROADCAST_ADDR)

    def test_broadcast_excluded_when_disallowed(self):
        assert not is_valid_address(BROADCAST_ADDR, allow_broadcast=False)

    def test_other_negatives_invalid(self):
        assert not is_valid_address(-2)


class TestHeaders:
    def test_rreq_sizes(self):
        h = RreqHeader(rreq_id=1, origin=0, origin_seq=1, dst=5)
        assert h.size_bytes(with_load_extension=False) == 24
        assert h.size_bytes(with_load_extension=True) == 28

    def test_rreq_dedupe_key(self):
        h = RreqHeader(rreq_id=9, origin=3, origin_seq=1, dst=5)
        assert h.dedupe_key() == (3, 9)

    def test_rrep_size(self):
        assert RrepHeader(origin=0, dst=5, dst_seq=2).size_bytes() == 20

    def test_rerr_size_scales_with_destinations(self):
        assert RerrHeader().size_bytes() == 4
        assert RerrHeader(unreachable=[(1, 2), (3, 4)]).size_bytes() == 20

    def test_hello_sizes(self):
        h = HelloHeader(load=0.4, neighbour_count=3)
        assert h.size_bytes(False) == 20
        assert h.size_bytes(True) == 24


class TestPacket:
    def _data(self, **kw):
        defaults = dict(
            kind=PacketKind.DATA, src=0, dst=5, ttl=16, payload_bytes=512
        )
        defaults.update(kw)
        return Packet(**defaults)

    def test_uid_unique(self):
        assert self._data().uid != self._data().uid

    def test_wire_bytes_data(self):
        assert self._data().wire_bytes() == 512 + IP_HEADER_BYTES

    def test_wire_bytes_control(self):
        rreq = Packet(
            kind=PacketKind.RREQ, src=0, dst=BROADCAST_ADDR, ttl=32,
            header=RreqHeader(rreq_id=1, origin=0, origin_seq=1, dst=5),
        )
        assert rreq.wire_bytes(with_load_extension=False) == 24
        assert rreq.wire_bytes(with_load_extension=True) == 28

    def test_broadcast_flag(self):
        assert self._data(dst=BROADCAST_ADDR).is_broadcast
        assert not self._data().is_broadcast

    def test_validation(self):
        with pytest.raises(ValueError):
            self._data(ttl=-1)
        with pytest.raises(ValueError):
            self._data(payload_bytes=-5)

    def test_copy_for_forwarding_fresh_uid(self):
        p = self._data(flow_id=3, seq=9)
        c = p.copy_for_forwarding()
        assert c.uid != p.uid
        assert (c.flow_id, c.seq, c.src, c.dst) == (3, 9, 0, 5)
        assert c.header is p.header  # shared by design
