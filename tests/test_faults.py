"""Tests for the declarative fault-injection subsystem (repro.faults).

The ``chaos``-marked tests are the CI failure-injection suite: the workflow
re-runs them under several seeds via ``REPRO_CHAOS_SEED``, so they must
hold for *any* seed, not one golden value.
"""

import json
import math
import os

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig, build_network
from repro.experiments.serialization import config_from_dict, config_to_dict
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    QueueSaturate,
    RadioFlap,
    RegionBlackout,
    flapping,
    plan_from_spec,
    poisson_crashes,
)
from repro.sim.rng import RandomStreams

#: CI varies this across jobs; locally it defaults to 1.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))


def full_plan() -> FaultPlan:
    """A plan exercising every event kind (node ids fit a 3×3 grid)."""
    return FaultPlan([
        NodeCrash(node=1, at_s=3.0),
        NodeRecover(node=1, at_s=6.0),
        RadioFlap(node=2, start_s=2.0, period_s=2.0, duty_on=0.5, until_s=8.0),
        LinkDegrade(node_a=3, node_b=4, start_s=4.0, duration_s=3.0,
                    extra_loss_db=40.0),
        QueueSaturate(node=5, start_s=2.0, duration_s=4.0, rate_pps=50.0),
        RegionBlackout(center_x=0.0, center_y=0.0, radius_m=50.0,
                       start_s=7.0, duration_s=2.0),
    ])


# ---------------------------------------------------------------------- #
# Plan construction + JSON round-trip
# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_round_trip_through_json(self):
        plan = full_plan()
        wire = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(wire) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultPlan.from_dict({"events": [{"kind": "meteor", "node": 0}]})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown NodeCrash keys"):
            FaultPlan.from_dict(
                {"events": [{"kind": "node_crash", "node": 0, "at_s": 1.0,
                             "severity": 9}]}
            )

    def test_validate_rejects_out_of_range_node(self):
        plan = FaultPlan([NodeCrash(node=7, at_s=1.0)])
        with pytest.raises(ValueError, match="references node 7"):
            plan.validate(4)

    def test_sorted_events_by_start_time(self):
        plan = full_plan()
        times = [getattr(ev, "at_s", None) or getattr(ev, "start_s", None)
                 for ev in plan.sorted_events()]
        assert times == sorted(times)

    def test_kinds(self):
        assert full_plan().kinds() == {
            "node_crash", "node_recover", "radio_flap", "link_degrade",
            "queue_saturate", "region_blackout",
        }

    @pytest.mark.parametrize("bad", [
        lambda: NodeCrash(node=-1, at_s=0.0),
        lambda: RadioFlap(node=0, start_s=0.0, period_s=1.0, duty_on=1.5,
                          until_s=5.0),
        lambda: RadioFlap(node=0, start_s=5.0, period_s=1.0, duty_on=0.5,
                          until_s=5.0),
        lambda: LinkDegrade(node_a=1, node_b=1, start_s=0.0, duration_s=1.0,
                            extra_loss_db=10.0),
        lambda: LinkDegrade(node_a=0, node_b=1, start_s=0.0, duration_s=1.0,
                            extra_loss_db=-3.0),
        lambda: QueueSaturate(node=0, start_s=0.0, duration_s=0.0),
        lambda: RegionBlackout(center_x=0, center_y=0, radius_m=0.0,
                               start_s=0.0, duration_s=1.0),
    ])
    def test_event_validation(self, bad):
        with pytest.raises(ValueError):
            bad()


# ---------------------------------------------------------------------- #
# Stochastic generators + spec expansion
# ---------------------------------------------------------------------- #
class TestGenerators:
    def test_poisson_deterministic_per_seed(self):
        def gen(seed):
            rng = RandomStreams(seed).stream("faults.plan")
            return poisson_crashes(
                0.5, 4.0, nodes=range(9), rng=rng, stop_s=60.0
            )

        assert gen(42) == gen(42)
        assert gen(42) != gen(43)

    def test_poisson_crash_recover_pairing(self):
        rng = RandomStreams(7).stream("faults.plan")
        plan = poisson_crashes(0.5, 4.0, nodes=range(9), rng=rng, stop_s=60.0)
        crashes = [e for e in plan.events if isinstance(e, NodeCrash)]
        recovers = [e for e in plan.events if isinstance(e, NodeRecover)]
        assert crashes and len(crashes) == len(recovers)
        # No node is crashed twice while still down.
        down_until: dict[int, float] = {}
        for ev in plan.sorted_events():
            if isinstance(ev, NodeCrash):
                assert down_until.get(ev.node, -1.0) <= ev.at_s
            elif isinstance(ev, NodeRecover):
                down_until[ev.node] = ev.at_s

    def test_flapping_staggers_phases(self):
        plan = flapping(range(4), period_s=4.0, duty_on=0.5, stop_s=20.0)
        starts = sorted(e.start_s for e in plan.events)
        assert starts == [0.0, 1.0, 2.0, 3.0]

    def test_spec_unknown_kind_and_keys(self):
        streams = RandomStreams(1)
        with pytest.raises(ValueError, match="unknown fault spec kind"):
            plan_from_spec({"kind": "nope"}, streams=streams,
                           node_count=4, sim_time_s=10.0)
        with pytest.raises(ValueError, match="missing keys"):
            plan_from_spec({"kind": "poisson_crashes", "rate_per_s": 1.0},
                           streams=streams, node_count=4, sim_time_s=10.0)
        with pytest.raises(ValueError, match="unknown fault spec keys"):
            plan_from_spec(
                {"kind": "flapping", "period_s": 1.0, "duty_on": 0.5,
                 "color": "red"},
                streams=streams, node_count=4, sim_time_s=10.0,
            )

    def test_compound_spec_merges(self):
        streams = RandomStreams(3)
        plan = plan_from_spec(
            {"kind": "compound", "specs": [
                {"kind": "flapping", "period_s": 2.0, "duty_on": 0.5,
                 "nodes": [0]},
                {"kind": "poisson_crashes", "rate_per_s": 0.3, "mttr_s": 3.0},
            ]},
            streams=streams, node_count=4, sim_time_s=30.0,
        )
        assert "radio_flap" in plan.kinds()
        assert "node_crash" in plan.kinds()


# ---------------------------------------------------------------------- #
# Injector behaviour on live networks
# ---------------------------------------------------------------------- #
def grid_config(**kw) -> ScenarioConfig:
    defaults = dict(
        protocol="aodv", grid_nx=3, grid_ny=3, spacing_m=200.0,
        n_flows=2, flow_rate_pps=10.0, sim_time_s=15.0, warmup_s=1.0,
        seed=CHAOS_SEED,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestInjector:
    def test_requires_real_mac(self):
        with pytest.raises(ValueError, match="needs the real PHY/MAC"):
            grid_config(mac="perfect",
                        fault_plan=FaultPlan([NodeCrash(node=0, at_s=1.0)]))

    def test_spec_and_plan_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            grid_config(
                fault_spec={"kind": "flapping", "period_s": 1.0,
                            "duty_on": 0.5},
                fault_plan=FaultPlan([NodeCrash(node=0, at_s=1.0)]),
            )

    @pytest.mark.chaos
    def test_compound_plan_never_raises(self):
        # ≥ 3 fault kinds live in one run; acceptance: faults surface as
        # metrics, never exceptions, and the guard counter stays clean.
        net = build_network(grid_config(fault_plan=full_plan().merged(
            FaultPlan([NodeCrash(node=0, at_s=5.0)])  # crash a flow endpoint
        )))
        assert net.injector is not None and net.resilience is not None
        net.start()
        net.sim.run(until=15.0)
        net.stop()
        assert net.injector.errors == 0
        assert net.injector.applied > 0
        totals = net.resilience.totals()
        assert totals["resilience_faults"] > 0
        assert totals["resilience_episodes"] > 0

    @pytest.mark.chaos
    def test_replay_is_byte_identical(self):
        spec = {"kind": "compound", "specs": [
            {"kind": "poisson_crashes", "rate_per_s": 0.2, "mttr_s": 3.0,
             "start_s": 2.0, "stop_s": 12.0},
            {"kind": "flapping", "period_s": 3.0, "duty_on": 0.6,
             "nodes": [4]},
        ]}

        def run():
            net = build_network(grid_config(fault_spec=spec))
            net.start()
            net.sim.run(until=15.0)
            net.stop()
            assert net.injector is not None and net.injector.errors == 0
            assert net.resilience is not None
            return net.resilience.summary_json()

        assert run() == run()

    def test_link_degrade_severs_chain(self):
        # 80 dB of extra loss on the only link of a 2-node chain: delivery
        # must pause for the degrade window and resume after restore.
        plan = FaultPlan([LinkDegrade(node_a=0, node_b=1, start_s=4.0,
                                      duration_s=4.0, extra_loss_db=80.0)])
        net = build_network(ScenarioConfig(
            protocol="aodv", topology="chain", n_nodes=2, spacing_m=150.0,
            n_flows=1, flow_rate_pps=20.0, sim_time_s=12.0, warmup_s=1.0,
            seed=5, fault_plan=plan,
        ))
        net.start()
        net.sim.run(until=12.0)
        net.stop()
        assert net.resilience is not None
        rx_times = [t for times in net.resilience._rx.values() for t in times]
        assert any(t < 4.0 for t in rx_times)          # healthy before
        assert not [t for t in rx_times if 4.5 < t < 7.5]  # dark during
        assert any(t > 8.5 for t in rx_times)          # healed after
        assert net.resilience.totals()["resilience_blackout_loss"] > 0
        # stop() must leave the channel clean even mid-degrade runs
        assert net.channel is not None
        assert not net.channel._impairments

    def test_queue_saturate_injects_noise(self):
        plan = FaultPlan([QueueSaturate(node=1, start_s=2.0, duration_s=4.0,
                                        rate_pps=100.0)])
        net = build_network(ScenarioConfig(
            protocol="aodv", topology="chain", n_nodes=3, spacing_m=150.0,
            n_flows=1, flow_rate_pps=2.0, sim_time_s=8.0, warmup_s=1.0,
            seed=6, fault_plan=plan,
        ))
        baseline = build_network(ScenarioConfig(
            protocol="aodv", topology="chain", n_nodes=3, spacing_m=150.0,
            n_flows=1, flow_rate_pps=2.0, sim_time_s=8.0, warmup_s=1.0,
            seed=6,
        ))
        for n in (net, baseline):
            n.start()
            n.sim.run(until=8.0)
            n.stop()
        assert net.injector is not None and net.injector.errors == 0
        # The saturated node's radio carries the extra broadcast load.
        assert (net.stacks[1].mac.radio.frames_sent
                > baseline.stacks[1].mac.radio.frames_sent + 50)
        # Background noise must not be billed as routing control traffic.
        assert net.resilience is not None
        counts = net.resilience.fault_counts
        assert counts.get("queue_saturate") == 2  # onset + clear

    def test_region_blackout_victims_and_recovery(self):
        # Disc over the grid centre (node 4 of a 3×3 at 200 m spacing).
        plan = FaultPlan([RegionBlackout(center_x=200.0, center_y=200.0,
                                         radius_m=210.0, start_s=3.0,
                                         duration_s=4.0)])
        net = build_network(grid_config(seed=8, fault_plan=plan))
        net.start()
        net.sim.run(until=4.0)
        # centre + the 4-neighbour cross are inside the disc
        dark = {s.node_id for s in net.stacks if not s.mac.radio.powered}
        assert dark == {1, 3, 4, 5, 7}
        net.sim.run(until=9.0)
        assert all(s.mac.radio.powered for s in net.stacks)
        net.sim.run(until=15.0)
        net.stop()
        assert net.injector is not None and net.injector.errors == 0

    def test_flap_preserves_mac_queue_crash_flushes(self):
        net = build_network(grid_config(seed=9, fault_plan=FaultPlan([
            RadioFlap(node=4, start_s=2.0, period_s=2.0, duty_on=0.5,
                      until_s=10.0),
        ])))
        net.start()
        net.sim.run(until=15.0)
        net.stop()
        assert net.injector is not None and net.injector.errors == 0
        assert net.stacks[4].mac.radio.powered  # always restored at the end


# ---------------------------------------------------------------------- #
# Scenario/config/executor integration
# ---------------------------------------------------------------------- #
class TestScenarioIntegration:
    def test_fault_spec_config_round_trips(self):
        config = grid_config(fault_spec={
            "kind": "poisson_crashes", "rate_per_s": 0.1, "mttr_s": 5.0,
        })
        assert config_from_dict(config_to_dict(config)) == config

    def test_fault_plan_config_round_trips(self):
        config = grid_config(fault_plan=full_plan())
        rebuilt = config_from_dict(
            json.loads(json.dumps(config_to_dict(config)))
        )
        assert rebuilt == config

    @pytest.mark.chaos
    def test_resilience_totals_ride_on_scenario_result(self):
        result = run_scenario(grid_config(fault_spec={
            "kind": "poisson_crashes", "rate_per_s": 0.25, "mttr_s": 3.0,
            "start_s": 2.0, "stop_s": 10.0,
        }))
        assert result.totals["resilience_faults"] > 0
        assert result.totals["resilience_episodes"] > 0
        assert 0.0 <= result.pdr <= 1.0
        # healthy runs carry no resilience keys
        healthy = run_scenario(grid_config())
        assert "resilience_faults" not in healthy.totals

    @pytest.mark.chaos
    def test_exec_campaign_checkpoints_and_resumes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.exec import ExecPolicy, run_configs
        from repro.experiments.serialization import result_to_dict

        configs = [
            grid_config(sim_time_s=8.0, fault_spec={
                "kind": "flapping", "period_s": 2.0, "duty_on": 0.5,
                "nodes": [4],
            }, seed=CHAOS_SEED + k)
            for k in range(2)
        ]
        first = run_configs(
            "chaos-resume-test", configs, policy=ExecPolicy(checkpoint=True)
        )
        cells = list((tmp_path / "cells").glob("*.json"))
        assert len(cells) == 2
        # Resumed campaign loads the checkpoints and reproduces the
        # results byte-identically (full round-trip through JSON).
        resumed = run_configs(
            "chaos-resume-test", configs, policy=ExecPolicy(resume=True)
        )
        for a, b in zip(first, resumed):
            assert json.dumps(result_to_dict(a), sort_keys=True) == \
                json.dumps(result_to_dict(b), sort_keys=True)


# ---------------------------------------------------------------------- #
# Resilience metric edge cases (pure unit tests)
# ---------------------------------------------------------------------- #
class TestResilienceCollector:
    def test_empty_run_yields_nan_not_crash(self):
        from repro.faults import ResilienceCollector

        rc = ResilienceCollector([])
        rc.finalize(10.0)
        totals = rc.totals()
        assert totals["resilience_faults"] == 0.0
        assert math.isnan(totals["resilience_reconv_mean_s"])
        json.loads(rc.summary_json())  # parses cleanly

    def test_blackout_loss_counts_only_window_losses(self):
        from repro.faults import ResilienceCollector
        from repro.net.packet import Packet, PacketKind

        class Flow:
            flow_id = 0
            rate_pps = 10.0

        rc = ResilienceCollector([Flow()])

        def pkt(seq, t):
            return Packet(kind=PacketKind.DATA, src=0, dst=1, ttl=8,
                          flow_id=0, seq=seq, created_at=t)

        for seq, t in enumerate([1.0, 2.0, 5.0, 5.5, 9.0]):
            rc.on_send(pkt(seq, t))
        # deliveries: everything except the two sent inside the window
        for seq, t in ((0, 1.1), (1, 2.1), (4, 9.1)):
            rc.on_receive(pkt(seq, [1.0, 2.0, 5.0, 5.5, 9.0][seq]), t)
        rc.on_fault("node_crash", time=4.0, onset=True, key=3)
        rc.on_fault("node_crash", time=7.0, onset=False, key=3)
        rc.finalize(10.0)
        assert rc.blackout_loss() == 2
