"""``repro-dse`` end-to-end: template → search → resume → report."""

from __future__ import annotations

import json

import pytest

from repro.dse.cli import main
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import save_config


@pytest.fixture()
def env(tmp_path, monkeypatch):
    """Isolated cache plus a tiny space + base config on disk."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    space = tmp_path / "space.json"
    space.write_text(json.dumps({
        "name": "cli-tiny",
        "dimensions": [
            {"name": "gamma", "field": "nlr.gamma", "type": "continuous",
             "low": 0.0, "high": 1.0},
            {"name": "p_min", "field": "nlr.p_min", "type": "continuous",
             "low": 0.1, "high": 0.8},
        ],
    }))
    base = tmp_path / "base.json"
    save_config(
        ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
            sim_time_s=6.0, warmup_s=1.0, seed=3,
        ),
        base,
    )
    return tmp_path


def search_args(env, out="run", extra=()):
    return [
        "search", "--space", str(env / "space.json"),
        "--base", str(env / "base.json"), "--out", str(env / out),
        "--generations", "2", "--population", "4", "--elites", "1",
        "--seed", "7", *extra,
    ]


def test_template_writes_example_space(tmp_path):
    out = tmp_path / "space.json"
    assert main(["template", "-o", str(out)]) == 0
    space = json.loads(out.read_text())
    assert space["name"] == "nlr-tuning"
    assert len(space["dimensions"]) == 6


def test_template_stdout(capsys):
    assert main(["template"]) == 0
    assert json.loads(capsys.readouterr().out)["name"] == "nlr-tuning"


def test_search_report_round_trip(env, capsys):
    assert main(search_args(env)) == 0
    out_lines = capsys.readouterr().out.splitlines()
    hash_line = [l for l in out_lines if l.startswith("final population hash:")]
    assert hash_line, out_lines
    first_hash = hash_line[0].split()[-1]
    assert (env / "run" / "state.json").exists()

    # A --resume invocation replays state and reproduces the exact hash.
    assert main(search_args(env, extra=["--resume"])) == 0
    resumed = capsys.readouterr().out
    assert f"final population hash: {first_hash}" in resumed
    assert "0 simulations run" in resumed

    # Reports in all three formats.
    assert main(["report", str(env / "run")]) == 0
    table = capsys.readouterr().out
    assert "pareto" in table.lower() or "fitness" in table.lower()
    assert first_hash in table

    assert main(["report", str(env / "run"), "--format", "csv",
                 "-o", str(env / "front.csv")]) == 0
    capsys.readouterr()
    csv_text = (env / "front.csv").read_text()
    assert "gamma" in csv_text.splitlines()[0]

    assert main(["report", str(env / "run"), "--format", "scatter",
                 "--x", "pdr", "--y", "mean_delay_s"]) == 0
    assert "pdr" in capsys.readouterr().out


def test_screen_command(env, capsys):
    args = [
        "screen", "--space", str(env / "space.json"),
        "--base", str(env / "base.json"), "--out", str(env / "screen"),
        "--levels", "3", "--no-surrogate", "--seed", "7",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "design: 9 cells, 9 evaluated, 0 pruned" in out
    assert (env / "screen" / "state.json").exists()


def test_errors_exit_2(env, capsys, tmp_path):
    assert main(["search", "--space", str(tmp_path / "missing.json"),
                 "--out", str(tmp_path / "x")]) == 2
    assert "error" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "b", "dimensions": [], "junk": 1}))
    assert main(["search", "--space", str(bad),
                 "--out", str(tmp_path / "x")]) == 2
    assert "unknown space keys" in capsys.readouterr().err

    assert main(search_args(env, extra=["--objective", "no_such_metric:max"])) == 2
    assert "not found" in capsys.readouterr().err

    assert main(["report", str(tmp_path / "nowhere")]) == 2
    capsys.readouterr()
