"""Shared fixtures/builders for protocol tests.

``make_perfect_net`` assembles a network of routing protocols over the
idealised :class:`~repro.mac.perfect.PerfectMac` so tests assert on
protocol logic without stochastic MAC effects.
"""

from __future__ import annotations

from typing import Callable

from repro.mac.perfect import PerfectMacNetwork
from repro.net.node import NodeStack
from repro.net.routing_base import RoutingProtocol
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_perfect_net(
    adjacency: dict[int, list[int]],
    routing_factory: Callable[[int, RandomStreams], RoutingProtocol],
    hop_delay_s: float = 1e-3,
    seed: int = 1,
):
    """Build (sim, stacks) over a PerfectMacNetwork with given adjacency."""
    sim = Simulator()
    streams = RandomStreams(seed)
    pm = PerfectMacNetwork(sim, lambda n: adjacency[n], hop_delay_s=hop_delay_s)
    stacks: list[NodeStack] = []
    for node_id in sorted(adjacency):
        mac = pm.create_mac(node_id)
        routing = routing_factory(node_id, streams)
        stacks.append(NodeStack(sim, node_id, mac, routing))
    return sim, stacks


def chain_adjacency(n: int) -> dict[int, list[int]]:
    """0 — 1 — 2 — ... — n-1."""
    adj: dict[int, list[int]] = {}
    for i in range(n):
        adj[i] = [j for j in (i - 1, i + 1) if 0 <= j < n]
    return adj


#: Diamond: two paths 0→4, a short one through 1 and a long one through 2–3.
DIAMOND = {0: [1, 2], 1: [0, 4], 2: [0, 3], 3: [2, 4], 4: [1, 3]}
