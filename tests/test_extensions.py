"""Tests for the optional protocol extensions: expanding-ring search and
random-waypoint mobility scenarios."""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.net.aodv import AodvConfig, AodvRouting

from tests.conftest import chain_adjacency, make_perfect_net


def aodv_factory(config):
    def make(node_id, streams):
        return AodvRouting(config, streams.stream(f"routing.{node_id}"))

    return make


class TestExpandingRing:
    def test_near_destination_found_with_small_ttl(self):
        cfg = AodvConfig(expanding_ring=True, ttl_start=2, ttl_increment=2,
                         ttl_threshold=7, hello_enabled=False)
        sim, stacks = make_perfect_net(chain_adjacency(8), aodv_factory(cfg))
        for s in stacks:
            s.start()
        got = []
        stacks[2].receive_callback = got.append
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=3.0)
        assert len(got) == 1
        # Ring of TTL 2 reaches node 2; nodes beyond never saw the flood.
        assert stacks[5].routing.rreq_forwarded == 0
        assert stacks[0].routing.control_tx["rreq"] >= 1

    def test_far_destination_needs_ring_expansion(self):
        cfg = AodvConfig(expanding_ring=True, ttl_start=2, ttl_increment=2,
                         ttl_threshold=7, rreq_wait_s=0.2,
                         hello_enabled=False)
        sim, stacks = make_perfect_net(chain_adjacency(8), aodv_factory(cfg))
        for s in stacks:
            s.start()
        got = []
        stacks[7].receive_callback = got.append
        stacks[0].send_data(dst=7, payload_bytes=10)
        sim.run(until=6.0)
        assert len(got) == 1
        # Multiple rings were sent before the destination was reached.
        assert stacks[0].routing.control_tx["rreq"] >= 3

    def test_ring_attempts_do_not_consume_retries(self):
        # Destination unreachable: rings expand 2→4→6, then the full-TTL
        # attempts consume rreq_retries, then discovery fails.
        cfg = AodvConfig(expanding_ring=True, ttl_start=2, ttl_increment=2,
                         ttl_threshold=6, rreq_retries=1, rreq_wait_s=0.1,
                         rreq_ttl=16, hello_enabled=False)
        adj = chain_adjacency(3)
        adj[9] = []  # isolated destination
        sim, stacks = make_perfect_net(adj, aodv_factory(cfg))
        for s in stacks:
            s.start()
        origin = stacks[0]
        origin.send_data(dst=9, payload_bytes=10)
        sim.run(until=10.0)
        r = origin.routing
        assert r.discoveries_failed == 1
        # 3 rings (2,4,6) + full-TTL initial + 1 retry = 5 originations
        assert r.control_tx["rreq"] == 5

    def test_expanding_ring_reduces_overhead_on_grid(self):
        base = ScenarioConfig(
            protocol="aodv", grid_nx=5, grid_ny=5, n_flows=3,
            sim_time_s=10.0, warmup_s=1.0, seed=5,
        )
        from dataclasses import replace

        ring = replace(base, aodv=AodvConfig(expanding_ring=True))
        assert run_scenario(ring).rreq_tx < run_scenario(base).rreq_tx

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AodvConfig(expanding_ring=True, ttl_start=0)
        with pytest.raises(ValueError):
            AodvConfig(expanding_ring=True, ttl_start=9, ttl_threshold=7)
        with pytest.raises(ValueError):
            AodvConfig(expanding_ring=True, ttl_threshold=64, rreq_ttl=32)


class TestMobilityScenario:
    def test_rwp_scenario_runs_and_breaks_links(self):
        config = ScenarioConfig(
            protocol="aodv", topology="random", n_nodes=16, area_m=(800.0, 800.0), n_flows=3,
            mobility="rwp", speed_range=(4.0, 10.0),
            sim_time_s=12.0, warmup_s=2.0, seed=5,
        )
        r = run_scenario(config)
        assert r.packets_sent > 0
        assert r.pdr > 0.3  # mobility hurts but must not kill the network

    def test_static_vs_mobile_discovery_traffic(self):
        base = dict(
            protocol="aodv", topology="random", n_nodes=16, area_m=(800.0, 800.0), n_flows=3,
            sim_time_s=12.0, warmup_s=2.0, seed=5,
        )
        static = run_scenario(ScenarioConfig(mobility="static", **base))
        mobile = run_scenario(
            ScenarioConfig(mobility="rwp", speed_range=(6.0, 12.0), **base)
        )
        assert mobile.rreq_tx >= static.rreq_tx

    def test_rwp_requires_real_mac(self):
        with pytest.raises(ValueError):
            ScenarioConfig(mobility="rwp", mac="perfect")

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(mobility="brownian")

    def test_rwp_determinism(self):
        config = ScenarioConfig(
            protocol="nlr", topology="random", n_nodes=12, n_flows=2,
            mobility="rwp", sim_time_s=10.0, warmup_s=2.0, seed=8,
        )
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.events_executed == b.events_executed
        assert a.totals == b.totals
