"""Property-style tests: ScenarioConfig survives its JSON round-trip.

``config_from_dict(config_to_dict(c)) == c`` must hold for *any*
constructible config — including declarative ``fault_spec`` /
``trace_spec`` payloads and concrete ``fault_plan`` objects — because
the exec fabric hashes configs through exactly this path: a field that
does not round-trip is a field that silently changes a cell's identity.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import config_from_dict, config_to_dict
from repro.faults.events import FaultPlan, NodeCrash, NodeRecover, RadioFlap


def round_trip(config: ScenarioConfig) -> ScenarioConfig:
    # Through real JSON text, not just dicts — exactness of floats and
    # tuple/list canonicalisation both matter.
    return config_from_dict(json.loads(json.dumps(config_to_dict(config))))


json_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
json_values = st.recursive(
    json_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.dictionaries(st.text(max_size=8), inner, max_size=3),
    ),
    max_leaves=8,
)


@st.composite
def scenario_configs(draw) -> ScenarioConfig:
    kwargs = {
        "protocol": draw(st.sampled_from(["nlr", "aodv", "dsdv", "gossip"])),
        "seed": draw(st.integers(min_value=0, max_value=2**31 - 1)),
        "grid_nx": draw(st.integers(min_value=2, max_value=6)),
        "grid_ny": draw(st.integers(min_value=2, max_value=6)),
        "spacing_m": draw(st.floats(min_value=50.0, max_value=500.0,
                                    allow_nan=False)),
        "area_m": (
            draw(st.floats(min_value=100.0, max_value=2000.0, allow_nan=False)),
            draw(st.floats(min_value=100.0, max_value=2000.0, allow_nan=False)),
        ),
        "gossip_p": draw(st.floats(min_value=0.01, max_value=1.0,
                                   allow_nan=False)),
        "counter_threshold": draw(st.integers(min_value=1, max_value=8)),
        "n_flows": draw(st.integers(min_value=1, max_value=12)),
        "flow_rate_pps": draw(st.floats(min_value=0.1, max_value=50.0,
                                        allow_nan=False)),
        "traffic": draw(st.sampled_from(["cbr", "poisson", "onoff"])),
        "warmup_s": 0.5,
        "sim_time_s": draw(st.floats(min_value=1.0, max_value=100.0,
                                     allow_nan=False)),
    }
    if draw(st.booleans()):
        kwargs["fault_spec"] = {
            "kind": "flapping",
            "period_s": draw(st.floats(min_value=1.0, max_value=20.0,
                                       allow_nan=False)),
            "duty_on": draw(st.floats(min_value=0.1, max_value=0.9,
                                      allow_nan=False)),
            "extra": draw(json_values),
        }
    if draw(st.booleans()):
        # trace_spec has a strict schema (obs.TraceSpec) — draw valid specs.
        spec: dict = {}
        if draw(st.booleans()):
            spec["categories"] = draw(
                st.lists(st.sampled_from(["mac", "net", "phy", "app"]),
                         min_size=1, max_size=3, unique=True)
            )
        if draw(st.booleans()):
            spec["ring"] = draw(st.integers(min_value=1, max_value=4096))
        if draw(st.booleans()):
            spec["retain"] = draw(st.booleans())
        spec["max_records"] = draw(st.integers(min_value=0, max_value=10**6))
        kwargs["trace_spec"] = spec
    return ScenarioConfig(**kwargs)


@given(scenario_configs())
@settings(max_examples=60, deadline=None)
def test_random_config_round_trips_exactly(config):
    assert round_trip(config) == config


def test_fault_spec_round_trips():
    cfg = ScenarioConfig(
        fault_spec={"kind": "poisson_crashes", "rate_per_s": 0.02,
                    "mttr_s": 5.0, "nodes": [1, 2, 3]},
    )
    again = round_trip(cfg)
    assert again.fault_spec == cfg.fault_spec
    assert again == cfg


def test_trace_spec_round_trips():
    cfg = ScenarioConfig(trace_spec={"categories": ["mac", "net"], "ring": 128})
    assert round_trip(cfg) == cfg


def test_fault_plan_round_trips():
    plan = FaultPlan([
        NodeCrash(node=4, at_s=3.0),
        NodeRecover(node=4, at_s=8.0),
        RadioFlap(node=2, start_s=2.0, period_s=2.0, duty_on=0.5,
                  until_s=9.0),
    ])
    cfg = ScenarioConfig(fault_plan=plan)
    again = round_trip(cfg)
    assert again.fault_plan == plan
    assert again == cfg


def test_numpy_scalars_canonicalised_not_stringified():
    # A config carrying numpy scalars (e.g. DSE mutation output) must
    # serialise to real JSON numbers and compare equal after the trip.
    cfg = ScenarioConfig(
        gossip_p=np.float64(0.5),
        counter_threshold=int(np.int64(2)),
        trace_spec={"ring": np.int64(64), "retain": True},
    )
    data = json.loads(json.dumps(config_to_dict(cfg)))
    assert data["gossip_p"] == 0.5
    assert data["trace_spec"] == {"ring": 64, "retain": True}
    assert config_from_dict(data).trace_spec == {"ring": 64, "retain": True}


def test_tuple_specs_canonicalised_at_construction():
    cfg = ScenarioConfig(trace_spec={"categories": ("mac", "net")})
    assert cfg.trace_spec == {"categories": ["mac", "net"]}
    assert round_trip(cfg) == cfg
