"""Tests for flow statistics, fairness, time series, and summaries."""

import math

import numpy as np
import pytest

from repro.metrics.collectors import network_totals
from repro.metrics.fairness import forwarding_load, jain_index, load_concentration
from repro.metrics.flowstats import FlowStatsCollector
from repro.metrics.summary import format_table, format_value
from repro.metrics.timeseries import TimeSeries
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator


def data_packet(flow=0, seq=0, created=1.0, hops=0, payload=512):
    return Packet(
        kind=PacketKind.DATA, src=0, dst=1, ttl=16, payload_bytes=payload,
        flow_id=flow, seq=seq, created_at=created, hops=hops,
    )


class TestFlowStats:
    def test_pdr_and_delay(self):
        c = FlowStatsCollector()
        for k in range(4):
            c.on_send(data_packet(seq=k, created=1.0 + k))
        for k in range(3):
            p = data_packet(seq=k, created=1.0 + k, hops=3)
            c.on_receive(p, now=p.created_at + 0.05)
        rec = c.flows[0]
        assert rec.pdr == pytest.approx(0.75)
        assert rec.mean_delay_s == pytest.approx(0.05)
        assert rec.mean_hops == pytest.approx(3.0)
        assert c.overall_pdr() == pytest.approx(0.75)

    def test_duplicate_deliveries_ignored(self):
        c = FlowStatsCollector()
        c.on_send(data_packet(seq=0))
        p = data_packet(seq=0)
        c.on_receive(p, now=2.0)
        c.on_receive(p, now=3.0)
        assert c.flows[0].received == 1

    def test_measurement_window_excludes_warmup(self):
        c = FlowStatsCollector(measure_from_s=5.0, measure_until_s=20.0)
        early = data_packet(seq=0, created=1.0)
        inside = data_packet(seq=1, created=10.0)
        late = data_packet(seq=2, created=25.0)
        for p in (early, inside, late):
            c.on_send(p)
            c.on_receive(p, now=p.created_at + 0.1)
        assert c.total_sent == 1
        assert c.total_received == 1

    def test_delay_stats(self):
        c = FlowStatsCollector()
        delays = [0.1, 0.2, 0.3]
        for k, d in enumerate(delays):
            p = data_packet(seq=k)
            c.on_send(p)
            c.on_receive(p, now=p.created_at + d)
        rec = c.flows[0]
        assert rec.delay_max == pytest.approx(0.3)
        assert rec.delay_std_s == pytest.approx(np.std(delays), abs=1e-9)

    def test_throughput(self):
        c = FlowStatsCollector()
        for k in range(11):
            p = data_packet(seq=k, created=1.0 + 0.1 * k, payload=1000)
            c.on_send(p)
            c.on_receive(p, now=p.created_at)  # zero delay
        # 11 kB over the 1.0 s receive span
        assert c.flows[0].throughput_bps() == pytest.approx(88_000, rel=1e-6)
        assert c.aggregate_throughput_bps(span_s=10.0) == pytest.approx(8_800)

    def test_empty_collector(self):
        c = FlowStatsCollector()
        assert c.overall_pdr() == 0.0
        assert math.isnan(c.mean_delay_s())
        assert math.isnan(c.mean_hops())

    def test_control_packets_not_counted(self):
        c = FlowStatsCollector()
        hello = Packet(kind=PacketKind.HELLO, src=0, dst=-1, ttl=1,
                       flow_id=-1, created_at=1.0)
        c.on_receive(hello, now=1.0)
        assert c.total_received == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FlowStatsCollector(measure_from_s=5.0, measure_until_s=5.0)

    def test_aggregate_throughput_validation(self):
        with pytest.raises(ValueError):
            FlowStatsCollector().aggregate_throughput_bps(0.0)


class TestFairness:
    def test_jain_uniform_is_one(self):
        assert jain_index([3, 3, 3]) == pytest.approx(1.0)

    def test_jain_single_carrier(self):
        assert jain_index([10, 0, 0, 0, 0]) == pytest.approx(0.2)

    def test_jain_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_jain_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    def test_jain_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(0, 10, size=8)
            j = jain_index(x)
            assert 1 / 8 <= j <= 1.0 + 1e-12

    def test_load_concentration(self):
        assert load_concentration([10, 1, 1, 1, 1], top_k=1) == pytest.approx(
            10 / 14
        )
        assert load_concentration([0, 0], top_k=1) == 0.0

    def test_forwarding_load_reads_protocols(self):
        class P:
            def __init__(self, n):
                self.data_forwarded = n

        loads = forwarding_load([P(3), P(7)])
        assert loads.tolist() == [3.0, 7.0]


class TestTimeSeries:
    def test_sampling(self):
        sim = Simulator()
        ts = TimeSeries(sim, period_s=0.5)
        ts.add_probe("t2", lambda: sim.now * 2)
        ts.start()
        sim.run(until=2.0)
        ts.stop()
        assert ts.times == [0.5, 1.0, 1.5, 2.0]
        assert ts.values("t2") == [1.0, 2.0, 3.0, 4.0]
        assert ts.as_array("t2").dtype == float

    def test_duplicate_probe_rejected(self):
        ts = TimeSeries(Simulator())
        ts.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            ts.add_probe("x", lambda: 1.0)


class TestSummary:
    def test_format_value(self):
        assert format_value(1.23456789, precision=3) == "1.23"
        assert format_value(float("nan")) == "nan"
        assert format_value(True) == "True"
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [10, 20]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestNetworkTotals:
    def test_totals_over_scenario(self):
        from repro.experiments.scenario import ScenarioConfig, build_network

        net = build_network(
            ScenarioConfig(protocol="aodv", grid_nx=3, grid_ny=3,
                           n_flows=2, sim_time_s=10.0, warmup_s=1.0, seed=2)
        )
        net.start()
        net.sim.run(until=10.0)
        net.stop()
        totals = network_totals(net.stacks)
        assert totals["rreq_tx"] >= 2
        assert totals["control_packets"] >= totals["rreq_tx"]
        assert totals["control_bytes"] > 0
        assert totals["normalized_routing_load"] > 0
