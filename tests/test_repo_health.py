"""Repository-health checks: documentation artefacts exist and are coherent."""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


class TestDocumentationArtefacts:
    def test_required_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml"):
            assert (ROOT / name).is_file(), name

    def test_design_declares_provenance_caveat(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Source-text mismatch" in text
        assert "search-results listing" in text

    def test_experiments_covers_every_registered_figure(self):
        from repro.experiments.figures import ALL_FIGURES

        text = (ROOT / "EXPERIMENTS.md").read_text()
        for name in ALL_FIGURES:
            assert f"## {name}:" in text, f"{name} missing from EXPERIMENTS.md"

    def test_readme_mentions_all_examples(self):
        text = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in text, script.name

    def test_docs_directory(self):
        for name in ("PROTOCOLS.md", "VALIDATION.md", "TUTORIAL.md"):
            assert (ROOT / "docs" / name).is_file(), name


class TestBenchmarkCoverage:
    def test_one_bench_per_registered_figure(self):
        from repro.experiments.figures import ALL_FIGURES

        bench_sources = " ".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for name, fn in ALL_FIGURES.items():
            assert fn.__name__ in bench_sources, (
                f"figure {name} has no benchmark regenerating it"
            )


class TestPublicApi:
    def test_package_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for pkg in ("repro.sim", "repro.phy", "repro.mac", "repro.net",
                    "repro.core", "repro.traffic", "repro.topology",
                    "repro.metrics", "repro.experiments", "repro.analysis",
                    "repro.util"):
            module = importlib.import_module(pkg)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (pkg, name)

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"
