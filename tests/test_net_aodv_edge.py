"""Edge-case and error-path tests for the AODV engine."""

import pytest

from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.packet import Packet, PacketKind, RerrHeader, RreqHeader

from tests.conftest import DIAMOND, chain_adjacency, make_perfect_net


def aodv_factory(config=None):
    def make(node_id, streams):
        return AodvRouting(
            config or AodvConfig(), streams.stream(f"routing.{node_id}")
        )

    return make


def start_all(sim, stacks, settle=0.0):
    for s in stacks:
        s.start()
    if settle:
        sim.run(until=settle)


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            AodvConfig(active_route_timeout_s=0.0)
        with pytest.raises(ValueError):
            AodvConfig(rreq_retries=-1)
        with pytest.raises(ValueError):
            AodvConfig(rreq_ttl=0)
        with pytest.raises(ValueError):
            AodvConfig(dest_reply_wait_s=-0.1)


class TestReplyWindow:
    def test_dest_reply_wait_delays_single_rrep(self):
        cfg = AodvConfig(dest_reply_wait_s=0.2, intermediate_reply=False,
                         hello_enabled=False)
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory(cfg))
        start_all(sim, stacks)
        got = []
        stacks[2].receive_callback = got.append
        stacks[0].send_data(dst=2, payload_bytes=10)
        # hop delay 1 ms: the RREQ reaches node 2 at ~2 ms; the reply is
        # held for the 200 ms window, so nothing arrives before ~202 ms.
        sim.run(until=0.15)
        assert got == []
        sim.run(until=1.0)
        assert len(got) == 1

    def test_window_answers_once_per_flood(self):
        cfg = AodvConfig(dest_reply_wait_s=0.05, intermediate_reply=False,
                         hello_enabled=False)
        sim, stacks = make_perfect_net(DIAMOND, aodv_factory(cfg))
        start_all(sim, stacks)
        stacks[0].send_data(dst=4, payload_bytes=10)
        sim.run(until=2.0)
        # both diamond branches delivered RREQ copies, but exactly one RREP
        # was originated by the destination
        assert stacks[4].routing.control_tx["rrep"] == 1


class TestRerrHandling:
    def test_rerr_invalidates_matching_routes(self):
        sim, stacks = make_perfect_net(chain_adjacency(4), aodv_factory())
        start_all(sim, stacks)
        stacks[0].send_data(dst=3, payload_bytes=10)
        sim.run(until=2.0)
        r0 = stacks[0].routing
        route = r0.table.lookup(3)
        assert route is not None and route.next_hop == 1
        # node 1 reports destination 3 unreachable with a fresher seqno
        rerr = Packet(
            kind=PacketKind.RERR, src=1, dst=-1, ttl=1,
            header=RerrHeader(unreachable=[(3, route.seqno + 1)]),
        )
        from repro.phy.frame import RxInfo

        r0.on_packet(rerr, from_node=1, info=RxInfo(1e-9, 1.0, 0.0, 0.0, 1))
        assert r0.table.lookup(3) is None

    def test_rerr_from_other_neighbour_ignored(self):
        sim, stacks = make_perfect_net(chain_adjacency(4), aodv_factory())
        start_all(sim, stacks)
        stacks[0].send_data(dst=3, payload_bytes=10)
        sim.run(until=2.0)
        r0 = stacks[0].routing
        seq = r0.table.lookup(3).seqno
        # a RERR arriving from a node that is NOT our next hop to 3
        rerr = Packet(
            kind=PacketKind.RERR, src=2, dst=-1, ttl=1,
            header=RerrHeader(unreachable=[(3, seq + 1)]),
        )
        from repro.phy.frame import RxInfo

        r0.on_packet(rerr, from_node=2, info=RxInfo(1e-9, 1.0, 0.0, 0.0, 2))
        assert r0.table.lookup(3) is not None  # untouched


class TestRreqEdgeCases:
    def test_own_rreq_echo_ignored(self):
        sim, stacks = make_perfect_net(chain_adjacency(2), aodv_factory())
        start_all(sim, stacks)
        r0 = stacks[0].routing
        header = RreqHeader(rreq_id=1, origin=0, origin_seq=1, dst=9)
        rreq = Packet(kind=PacketKind.RREQ, src=0, dst=-1, ttl=8, header=header)
        from repro.phy.frame import RxInfo

        before = r0.rreq_forwarded
        r0.on_packet(rreq, from_node=1, info=RxInfo(1e-9, 1.0, 0.0, 0.0, 1))
        sim.run(until=1.0)
        assert r0.rreq_forwarded == before

    def test_ttl_expired_rreq_not_forwarded(self):
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory())
        start_all(sim, stacks)
        r1 = stacks[1].routing
        header = RreqHeader(rreq_id=5, origin=0, origin_seq=3, dst=2)
        rreq = Packet(kind=PacketKind.RREQ, src=0, dst=-1, ttl=1, header=header)
        from repro.phy.frame import RxInfo

        r1.on_packet(rreq, from_node=0, info=RxInfo(1e-9, 1.0, 0.0, 0.0, 0))
        sim.run(until=1.0)
        assert r1.rreq_forwarded == 0

    def test_duplicate_rreq_counted_not_reforwarded(self):
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory())
        start_all(sim, stacks)
        r1 = stacks[1].routing
        header = RreqHeader(rreq_id=5, origin=0, origin_seq=3, dst=9)
        from repro.phy.frame import RxInfo

        info = RxInfo(1e-9, 1.0, 0.0, 0.0, 0)
        for _ in range(3):
            rreq = Packet(kind=PacketKind.RREQ, src=0, dst=-1, ttl=8,
                          header=header)
            r1.on_packet(rreq, from_node=0, info=info)
        sim.run(until=1.0)
        assert r1.rreq_forwarded == 1

    def test_buffer_overflow_drops(self):
        cfg = AodvConfig(buffer_capacity=3, rreq_retries=0, rreq_wait_s=5.0,
                         hello_enabled=False)
        adj = {0: [], 1: []}  # no connectivity: discovery can never finish
        sim, stacks = make_perfect_net(adj, aodv_factory(cfg))
        start_all(sim, stacks)
        for k in range(10):
            stacks[0].send_data(dst=1, payload_bytes=10, seq=k)
        assert stacks[0].routing.data_dropped_buffer == 7

    def test_data_without_route_generates_rerr(self):
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory())
        start_all(sim, stacks)
        r1 = stacks[1].routing
        data = Packet(kind=PacketKind.DATA, src=0, dst=9, ttl=8,
                      payload_bytes=10)
        from repro.phy.frame import RxInfo

        r1.on_packet(data, from_node=0, info=RxInfo(1e-9, 1.0, 0.0, 0.0, 0))
        sim.run(until=0.5)
        assert r1.data_dropped_no_route == 1
        assert r1.control_tx["rerr"] == 1

    def test_data_ttl_exhaustion_counted(self):
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory())
        start_all(sim, stacks)
        r1 = stacks[1].routing
        data = Packet(kind=PacketKind.DATA, src=0, dst=2, ttl=1,
                      payload_bytes=10)
        from repro.phy.frame import RxInfo

        r1.on_packet(data, from_node=0, info=RxInfo(1e-9, 1.0, 0.0, 0.0, 0))
        assert r1.data_dropped_ttl == 1


class TestStopCleanup:
    def test_stop_cancels_pending_discoveries(self):
        adj = {0: [], 1: []}
        sim, stacks = make_perfect_net(adj, aodv_factory())
        start_all(sim, stacks)
        stacks[0].send_data(dst=1, payload_bytes=10)
        stacks[0].stop()
        sim.run(until=20.0)  # no retry timers must fire after stop
        assert stacks[0].routing.control_tx["rreq"] == 1
