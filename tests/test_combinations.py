"""Cross-feature combination tests (features that must compose)."""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.mac.csma import MacConfig


def run(**kw):
    defaults = dict(
        grid_nx=3, grid_ny=3, n_flows=2, flow_rate_pps=8.0,
        sim_time_s=10.0, warmup_s=2.0, seed=7,
    )
    defaults.update(kw)
    return run_scenario(ScenarioConfig(**defaults))


class TestFeatureCombinations:
    def test_nlr_with_rts_cts(self):
        r = run(protocol="nlr", mac_config=MacConfig(rts_cts_enabled=True))
        assert r.pdr > 0.9

    def test_nlr_with_shadowing(self):
        r = run(protocol="nlr", shadowing_sigma_db=3.0, seed=19)
        assert r.pdr > 0.5

    def test_dsdv_with_mobility(self):
        r = run(
            protocol="dsdv", topology="random", n_nodes=14,
            area_m=(700.0, 700.0), mobility="rwp", speed_range=(2.0, 6.0),
            sim_time_s=15.0, warmup_s=6.0, seed=5,
        )
        assert r.packets_sent > 0
        assert r.pdr > 0.3

    def test_gossip_with_onoff_traffic(self):
        r = run(protocol="gossip", traffic="onoff")
        assert r.pdr > 0.8

    def test_counter_with_poisson_and_gateway(self):
        r = run(protocol="counter", traffic="poisson",
                flow_pattern="gateway", n_gateways=1)
        assert r.pdr > 0.9

    def test_oracle_with_rts_and_shadowing(self):
        r = run(protocol="oracle",
                mac_config=MacConfig(rts_cts_enabled=True),
                shadowing_sigma_db=2.0, seed=23)
        assert r.pdr > 0.6

    def test_nlr_expanding_ring(self):
        from repro.core.nlr import NlrConfig
        from repro.net.aodv import AodvConfig

        nlr = NlrConfig(
            aodv=AodvConfig(
                dest_reply_wait_s=0.05, intermediate_reply=False,
                origin_refresh_on_use=False, active_route_timeout_s=5.0,
                expanding_ring=True,
            )
        )
        r = run(protocol="nlr", nlr=nlr, grid_nx=4, grid_ny=4)
        assert r.pdr > 0.9

    def test_dsdv_deterministic(self):
        a = run(protocol="dsdv")
        b = run(protocol="dsdv")
        assert a.totals == b.totals

    def test_mac_rts_with_dsdv(self):
        r = run(protocol="dsdv", mac_config=MacConfig(rts_cts_enabled=True))
        assert r.pdr > 0.85
