"""Tests for benchmarks/compare.py (explicit baseline-record diffing)."""

import json

import pytest

from benchmarks import compare as cmp


def _record(*, rev="a", cpu="cpu-x", quick=False, kernels=None, derived=None):
    return {
        "schema": 1,
        "rev": rev,
        "quick": quick,
        "generated_utc": "2026-08-08T00:00:00+00:00",
        "cpu": cpu,
        "kernels": kernels if kernels is not None else {},
        "derived": derived if derived is not None else {},
    }


def _kernel(wall, **extra):
    return {"wall_s": wall, **extra}


class TestCompare:
    def test_no_gates_never_fails(self, capsys):
        old = _record(kernels={"k": _kernel(1.0, events_per_s=100.0)})
        new = _record(rev="b", kernels={"k": _kernel(3.0, events_per_s=33.0)})
        assert cmp.compare(old, new, None, {}) == []
        out = capsys.readouterr().out
        assert "3.00x" in out

    def test_wall_gate_trips_on_same_cpu(self):
        old = _record(kernels={"k": _kernel(1.0)})
        new = _record(rev="b", kernels={"k": _kernel(1.5)})
        failures = cmp.compare(old, new, 1.25, {})
        assert len(failures) == 1
        assert "k: wall ratio 1.50x" in failures[0]

    def test_wall_gate_passes_within_tolerance(self):
        old = _record(kernels={"k": _kernel(1.0)})
        new = _record(rev="b", kernels={"k": _kernel(1.2)})
        assert cmp.compare(old, new, 1.25, {}) == []

    def test_wall_gate_skipped_across_cpus(self, capsys):
        old = _record(cpu="cpu-x", kernels={"k": _kernel(1.0)})
        new = _record(rev="b", cpu="cpu-y", kernels={"k": _kernel(9.0)})
        assert cmp.compare(old, new, 1.25, {}) == []
        assert "wall-ratio gate skipped" in capsys.readouterr().out

    def test_wall_gate_skipped_across_quick_modes(self, capsys):
        old = _record(quick=True, kernels={"k": _kernel(0.1)})
        new = _record(rev="b", quick=False, kernels={"k": _kernel(2.0)})
        assert cmp.compare(old, new, 1.25, {}) == []
        assert "different --quick modes" in capsys.readouterr().out

    def test_unshared_kernels_reported_not_gated(self, capsys):
        old = _record(kernels={"gone": _kernel(1.0)})
        new = _record(rev="b", kernels={"added": _kernel(9.0)})
        assert cmp.compare(old, new, 1.25, {}) == []
        out = capsys.readouterr().out
        assert "gone" in out and "new" in out

    def test_min_derived_floor_trips(self):
        old = _record(derived={"sinr_slot_speedup": 5.5})
        new = _record(rev="b", derived={"sinr_slot_speedup": 2.1})
        failures = cmp.compare(old, new, None, {"sinr_slot_speedup": 3.0})
        assert len(failures) == 1
        assert "2.10x below floor 3.00x" in failures[0]

    def test_min_derived_floor_passes(self):
        new = _record(rev="b", derived={"sinr_slot_speedup": 5.5})
        assert cmp.compare(_record(), new, None,
                           {"sinr_slot_speedup": 3.0}) == []

    def test_min_derived_missing_key_fails(self):
        failures = cmp.compare(_record(), _record(rev="b"), None,
                               {"nope": 1.0})
        assert failures and "missing" in failures[0]

    def test_min_derived_enforced_across_cpus(self):
        # Dimensionless ratios stay gated even when wall gates are off.
        old = _record(cpu="cpu-x")
        new = _record(rev="b", cpu="cpu-y", derived={"r": 0.5})
        assert cmp.compare(old, new, 1.25, {"r": 2.0})


class TestParseMinDerived:
    def test_parses_pairs(self):
        got = cmp._parse_min_derived(["a:1.5", "b:3"])
        assert got == {"a": 1.5, "b": 3.0}

    def test_rejects_missing_separator(self):
        with pytest.raises(SystemExit):
            cmp._parse_min_derived(["nope"])

    def test_rejects_non_numeric(self):
        with pytest.raises(SystemExit):
            cmp._parse_min_derived(["a:fast"])


class TestMain:
    def _write(self, path, record):
        path.write_text(json.dumps(record))
        return str(path)

    def test_exit_zero_on_clean_diff(self, tmp_path):
        old = self._write(tmp_path / "old.json",
                          _record(kernels={"k": _kernel(1.0)}))
        new = self._write(tmp_path / "new.json",
                          _record(rev="b", kernels={"k": _kernel(1.1)}))
        assert cmp.main([old, new, "--fail-above", "1.25"]) == 0

    def test_exit_one_on_regression(self, tmp_path):
        old = self._write(tmp_path / "old.json",
                          _record(kernels={"k": _kernel(1.0)}))
        new = self._write(tmp_path / "new.json",
                          _record(rev="b", kernels={"k": _kernel(2.0)}))
        assert cmp.main([old, new, "--fail-above", "1.25"]) == 1

    def test_exit_one_on_derived_floor(self, tmp_path):
        old = self._write(tmp_path / "old.json", _record())
        new = self._write(tmp_path / "new.json",
                          _record(rev="b", derived={"s": 1.0}))
        assert cmp.main([old, new, "--min-derived", "s:3.0"]) == 1
        assert cmp.main([old, new, "--min-derived", "s:0.5"]) == 0

    def test_rejects_non_record(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = self._write(tmp_path / "good.json", _record())
        with pytest.raises(SystemExit):
            cmp.main([str(bad), good])

    def test_rejects_unreadable(self, tmp_path):
        good = self._write(tmp_path / "good.json", _record())
        with pytest.raises(SystemExit):
            cmp.main([str(tmp_path / "absent.json"), good])
