"""Tests for sequential-statistics early stopping (repro.exec.adaptive)."""

import json
import math
from dataclasses import replace

import pytest

from repro.exec import (
    AdaptivePolicy,
    ExecPolicy,
    parse_adaptive_spec,
    run_adaptive_cells,
    using,
)
from repro.exec.adaptive import AdaptiveReport
from repro.experiments.runner import replicate
from repro.experiments.scenario import ScenarioConfig


def tiny(protocol="aodv", **kw):
    defaults = dict(
        protocol=protocol, grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=8.0, warmup_s=1.0, seed=3,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path


class FakeResult:
    """Stand-in carrying just the metric dict the stopper reads."""

    def __init__(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict[str, float]:
        return {"pdr": self.value}


def fake_run_fn(value_of):
    """run_fn double: metric value is a pure function of the seed."""
    calls = []

    def run_fn(name, configs, policy=None, tags=None):
        calls.append((name, [c.seed for c in configs]))
        return [FakeResult(value_of(c.seed)) for c in configs]

    run_fn.calls = calls
    return run_fn


class TestPolicyValidation:
    def test_needs_some_halfwidth(self):
        with pytest.raises(ValueError, match="halfwidth"):
            AdaptivePolicy(ci_halfwidth=None, rel_halfwidth=None)

    @pytest.mark.parametrize("kw", [
        dict(ci_halfwidth=0.0),
        dict(rel_halfwidth=-1.0),
        dict(level=1.0),
        dict(level=0.0),
        dict(min_reps=1),
        dict(max_reps=2, min_reps=5),
        dict(wave=0),
    ])
    def test_bad_fields_rejected(self, kw):
        with pytest.raises(ValueError):
            AdaptivePolicy(**kw)

    def test_resolve_caps_at_budget(self):
        pol = AdaptivePolicy(min_reps=5, max_reps=None).resolve(3)
        assert pol.max_reps == 3
        assert pol.min_reps == 3

    def test_resolve_keeps_tighter_max(self):
        pol = AdaptivePolicy(min_reps=2, max_reps=4).resolve(10)
        assert pol.max_reps == 4

    def test_converged_rejects_inf_and_nan(self):
        pol = AdaptivePolicy(ci_halfwidth=1e9)
        assert not pol.converged(0.5, math.inf)
        assert not pol.converged(0.5, math.nan)
        assert pol.converged(0.5, 1.0)

    def test_relative_halfwidth(self):
        pol = AdaptivePolicy(ci_halfwidth=None, rel_halfwidth=0.1)
        assert pol.converged(10.0, 0.5)
        assert not pol.converged(1.0, 0.5)


class TestParseSpec:
    def test_full_spec(self):
        pol = parse_adaptive_spec("mean_delay_s:0.002:3")
        assert pol.metric == "mean_delay_s"
        assert pol.ci_halfwidth == 0.002
        assert pol.min_reps == 3

    @pytest.mark.parametrize("spec", ["pdr", ":0.01", "pdr:abc", "pdr:0.01:x:y"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_adaptive_spec(spec)


class TestWaveScheduler:
    def test_zero_variance_stops_at_min_reps(self):
        run_fn = fake_run_fn(lambda seed: 0.75)
        report = run_adaptive_cells(
            "t", [("a", tiny())], n_budget=10,
            adaptive=AdaptivePolicy(ci_halfwidth=0.01, min_reps=3),
            run_fn=run_fn,
        )
        (d,) = report.decisions
        assert d.n_used == 3
        assert d.reason == "degenerate"
        assert d.stopped_early
        assert report.saved_fraction == pytest.approx(0.7)

    def test_noisy_cell_runs_to_budget(self):
        run_fn = fake_run_fn(lambda seed: 100.0 * (seed % 2))
        report = run_adaptive_cells(
            "t", [("a", tiny())], n_budget=6,
            adaptive=AdaptivePolicy(ci_halfwidth=0.001, min_reps=2, wave=2),
            run_fn=run_fn,
        )
        (d,) = report.decisions
        assert d.n_used == 6
        assert d.reason == "budget"
        assert not d.stopped_early
        assert report.saved_fraction == 0.0

    def test_waves_are_single_campaigns_across_cells(self):
        run_fn = fake_run_fn(lambda seed: float(seed))
        run_adaptive_cells(
            "t", [("a", tiny(seed=100)), ("b", tiny(seed=200))], n_budget=4,
            adaptive=AdaptivePolicy(ci_halfwidth=0.001, min_reps=2, wave=1),
            run_fn=run_fn,
        )
        # First wave: both cells' min_reps seeds in ONE campaign.
        name, seeds = run_fn.calls[0]
        assert name == "t-wave1"
        assert seeds == [100, 101, 200, 201]

    def test_seed_ladder_prefix_property(self):
        values = {s: 0.5 + 0.001 * (s % 3) for s in range(100, 120)}
        run_fn = fake_run_fn(lambda seed: values[seed])
        report = run_adaptive_cells(
            "t", [("a", tiny(seed=100))], n_budget=10,
            adaptive=AdaptivePolicy(ci_halfwidth=0.05, min_reps=3),
            run_fn=run_fn,
        )
        used = [r.value for r in report.results["a"]]
        full_ladder = [values[100 + k] for k in range(10)]
        assert used == full_ladder[: len(used)]

    def test_mixed_convergence(self):
        # "a" is deterministic, "b" is violently noisy.
        run_fn = fake_run_fn(
            lambda seed: 0.9 if seed < 200 else 100.0 * (seed % 2)
        )
        report = run_adaptive_cells(
            "t", [("a", tiny(seed=100)), ("b", tiny(seed=200))], n_budget=6,
            adaptive=AdaptivePolicy(ci_halfwidth=0.01, min_reps=2, wave=2),
            run_fn=run_fn,
        )
        by_key = {d.key: d for d in report.decisions}
        assert by_key["a"].n_used == 2
        assert by_key["b"].n_used == 6
        assert len(report.results["a"]) == 2
        assert len(report.results["b"]) == 6

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_adaptive_cells(
                "t", [("a", tiny()), ("a", tiny("nlr"))], n_budget=4,
                adaptive=AdaptivePolicy(),
                run_fn=fake_run_fn(lambda s: 0.0),
            )

    def test_budget_below_two_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            run_adaptive_cells(
                "t", [("a", tiny())], n_budget=1,
                adaptive=AdaptivePolicy(),
                run_fn=fake_run_fn(lambda s: 0.0),
            )

    def test_audit_log_records_stops_and_summary(self, tmp_path):
        audit = tmp_path / "audit.jsonl"
        run_fn = fake_run_fn(lambda seed: 0.5)
        run_adaptive_cells(
            "audited", [("a", tiny())], n_budget=5,
            adaptive=AdaptivePolicy(ci_halfwidth=0.01, min_reps=2),
            run_fn=run_fn, audit_path=audit,
        )
        lines = [json.loads(l) for l in audit.read_text().splitlines()]
        stops = [l for l in lines if l["event"] == "stop"]
        summaries = [l for l in lines if l["event"] == "summary"]
        assert len(stops) == 1 and len(summaries) == 1
        assert stops[0]["key"] == "a"
        assert stops[0]["n_used"] == 2
        assert stops[0]["campaign"] == "audited"
        assert summaries[0]["replicates_used"] == 2
        assert summaries[0]["replicates_budget"] == 5

    def test_report_accounting(self):
        report = AdaptiveReport(results={"a": [FakeResult(1.0)] * 3})
        assert report.replicates_used == 3
        assert report.saved_fraction == 0.0  # no decisions → no budget


class TestReplicateIntegration:
    def test_adaptive_results_are_prefix_of_fixed(self):
        cfg = tiny()
        # pdr on this tiny grid is deterministic enough that a loose
        # half-width stops at min_reps.
        adaptive = AdaptivePolicy(metric="pdr", ci_halfwidth=10.0, min_reps=2)
        runs_a, _ = replicate(cfg, n_runs=4, adaptive=adaptive)
        runs_f, _ = replicate(cfg, n_runs=4)
        assert len(runs_a) == 2
        assert [r.as_dict() for r in runs_a] \
            == [r.as_dict() for r in runs_f[:2]]

    def test_policy_carried_adaptive(self):
        cfg = tiny()
        adaptive = AdaptivePolicy(metric="pdr", ci_halfwidth=10.0, min_reps=2)
        with using(adaptive=adaptive):
            runs, summary = replicate(cfg, n_runs=4)
        assert len(runs) == 2
        assert "pdr" in summary

    def test_explicit_policy_adaptive(self):
        cfg = tiny()
        policy = ExecPolicy(
            adaptive=AdaptivePolicy(metric="pdr", ci_halfwidth=10.0, min_reps=2)
        )
        runs, _ = replicate(cfg, n_runs=4, policy=policy)
        assert len(runs) == 2

    def test_single_run_budget_stays_fixed_path(self):
        cfg = tiny()
        adaptive = AdaptivePolicy(metric="pdr", ci_halfwidth=10.0, min_reps=2)
        runs, _ = replicate(cfg, n_runs=1, adaptive=adaptive)
        assert len(runs) == 1

    def test_no_adaptive_default_unchanged(self):
        cfg = tiny()
        runs_a, summary_a = replicate(cfg, n_runs=2)
        runs_b, summary_b = replicate(cfg, n_runs=2, adaptive=None)
        assert [r.as_dict() for r in runs_a] == [r.as_dict() for r in runs_b]
        assert {k: (c.mean, c.half_width) for k, c in summary_a.items()} \
            == {k: (c.mean, c.half_width) for k, c in summary_b.items()}


class TestCliSpecWiring:
    def test_experiments_cli_accepts_adaptive_flags(self, capsys):
        from repro.experiments.__main__ import main
        from repro.exec import configure, current_policy

        assert main(["--list", "--adaptive", "pdr:0.02:3",
                     "--backend", "warm"]) == 0
        pol = current_policy()
        try:
            assert pol.adaptive is not None
            assert pol.adaptive.metric == "pdr"
            assert pol.backend == "warm"
        finally:
            configure(adaptive=None, backend="auto", workers=1,
                      progress=False, resume=False)

    def test_no_adaptive_wins(self):
        from repro.experiments.__main__ import main
        from repro.exec import configure, current_policy

        assert main(["--list", "--adaptive", "pdr:0.02",
                     "--no-adaptive"]) == 0
        try:
            assert current_policy().adaptive is None
        finally:
            configure(adaptive=None, backend="auto", workers=1,
                      progress=False, resume=False)
