"""Protocol hardening under failures: RERR storms, HELLO expiry, NLR state.

Satellite suite of the fault-injection PR: the routing layer must stay
well-behaved when the PHY/MAC beneath it is being actively broken.
"""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_network
from repro.faults import FaultPlan, RadioFlap
from repro.net.aodv import AodvConfig
from repro.net.packet import Packet, PacketKind
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import CbrSource


def chain_net(n_nodes=5, flows=((0, 4), (1, 4)), rate_pps=10.0, **kw):
    """Chain network with deterministic end-to-end CBR flows."""
    defaults = dict(
        protocol="aodv", topology="chain", n_nodes=n_nodes, spacing_m=200.0,
        n_flows=1, sim_time_s=30.0, warmup_s=1.0, seed=13,
    )
    defaults.update(kw)
    net = build_network(ScenarioConfig(**defaults))
    net.sources.clear()
    net.flows = []
    for fid, (src, dst) in enumerate(flows):
        flow = FlowSpec(flow_id=fid, src=src, dst=dst, rate_pps=rate_pps,
                        start_s=1.0, stop_s=defaults["sim_time_s"])
        net.flows.append(flow)
        net.sources.append(
            CbrSource(net.sim, net.stacks[src], flow,
                      on_send=net.collector.on_send)
        )
    return net


class TestRerrRateLimit:
    def test_limiter_caps_originations_per_second(self):
        net = chain_net()
        routing = net.stacks[0].routing
        assert routing.config.rerr_rate_limit_per_s == 10  # RFC 3561 default
        for i in range(15):
            routing._send_rerr([(40 + i, 1)])
        assert routing.control_tx["rerr"] == 10
        assert routing.rerr_suppressed == 5

    def test_window_drains_after_one_second(self):
        net = chain_net()
        routing = net.stacks[0].routing
        for i in range(12):
            routing._send_rerr([(40 + i, 1)])
        assert routing.control_tx["rerr"] == 10
        net.sim.run(until=1.5)  # the 1 s sliding window empties
        routing._send_rerr([(99, 1)])
        assert routing.control_tx["rerr"] == 11
        assert routing.rerr_suppressed == 2

    def test_limit_zero_disables(self):
        net = chain_net(aodv=AodvConfig(rerr_rate_limit_per_s=0))
        routing = net.stacks[0].routing
        for i in range(25):
            routing._send_rerr([(40 + i, 1)])
        assert routing.control_tx["rerr"] == 25
        assert routing.rerr_suppressed == 0


class TestRerrPropagationOnChain:
    def test_multi_flow_chain_failure_bounded_rerrs(self):
        # Two flows share the 0-1-2-3-4 chain; node 3 dies mid-run.  Node 2
        # must originate a RERR, node 1 must propagate it back toward the
        # precursors — and the per-failure RERR count must stay bounded
        # (one invalidation wave, not one RERR per queued data packet).
        net = chain_net()
        net.start()
        net.sim.run(until=8.0)
        net.stacks[3].fail()
        net.sim.run(until=20.0)
        net.stop()
        rerr_total = sum(
            s.routing.control_tx["rerr"] for s in net.stacks
        )
        assert rerr_total >= 2  # origination + upstream propagation
        # A storm regression (RERR per undeliverable packet at 2×10 pps
        # over 12 s) would blow far past this even with the rate limiter.
        assert rerr_total <= 40
        # Upstream state reacted: the origins lost their routes and their
        # re-discoveries toward the now-partitioned destination fail.
        r0 = net.stacks[0].routing
        assert r0.discoveries_failed > 0 or r0.data_dropped_no_route > 0

    def test_discovery_racing_crashed_destination_is_safe(self):
        # Crash the destination while the origin is mid-discovery; the
        # timeout/RREP race must not raise (regression for the
        # _discovery_timeout identity guard).
        net = chain_net(flows=((0, 4),))
        net.start()
        net.sim.schedule(1.05, net.stacks[4].fail)  # just as RREQs fly
        net.sim.run(until=15.0)
        net.stop()
        r0 = net.stacks[0].routing
        assert r0.discoveries_failed > 0


class TestHelloUnderFlapping:
    def test_neighbour_expires_while_dark_and_returns(self):
        # Node 4's radio goes dark from t=6 to t=15 (one long flap cycle):
        # neighbours must expire it after neighbour_lifetime_s, then
        # re-learn it from post-recovery HELLOs.
        plan = FaultPlan([RadioFlap(node=4, start_s=5.0, period_s=10.0,
                                    duty_on=0.1, until_s=16.0)])
        net = build_network(ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, spacing_m=200.0,
            n_flows=1, sim_time_s=20.0, warmup_s=1.0, seed=17,
            fault_plan=plan,
        ))
        net.start()
        table = net.stacks[1].routing.neighbour_table
        assert table is not None
        net.sim.run(until=5.5)
        assert table.get(4) is not None  # healthy: heard recently
        net.sim.run(until=12.0)          # dark since 6.0 > lifetime 2.5 s
        assert table.get(4) is None
        net.sim.run(until=19.0)          # radio restored at 15.0
        assert table.get(4) is not None
        net.stop()
        assert net.injector is not None and net.injector.errors == 0


class TestNlrLinkFailureState:
    def test_link_failure_drops_neighbour_load_entry(self):
        # A MAC-reported link failure must purge the dead neighbour from
        # the neighbourhood-load table immediately — not leave its stale
        # advertised load biasing RREQ costs until lifetime expiry.
        net = build_network(ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, spacing_m=200.0,
            n_flows=2, sim_time_s=20.0, warmup_s=1.0, seed=19,
        ))
        net.start()
        net.sim.run(until=5.0)
        routing = net.stacks[0].routing
        table = routing.neighbour_table
        assert table is not None and table.get(1) is not None
        dummy = Packet(kind=PacketKind.DATA, src=0, dst=8, ttl=5)
        routing._handle_link_failure(1, dummy)
        assert table.get(1) is None  # gone now, not in 2.5 s
        # and the route through it is invalidated (engine behaviour kept)
        route = routing.table.lookup(1)
        assert route is None
        net.sim.run(until=8.0)
        net.stop()
