"""Unit tests for the observability subsystem (repro.obs).

Covers the JSONL schema, streaming/ring/composite sinks, the metrics
registry, the engine profiler, and the tracer's retention accounting
(drop counts, one-time warning, sink pass-through).
"""

from __future__ import annotations

import gzip
import json
import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import EngineProfiler
from repro.obs.schema import (
    TRACE_SCHEMA_VERSION,
    record_to_dict,
    trace_footer,
    trace_header,
    validate_trace_line,
)
from repro.obs.sinks import CompositeSink, JsonlTraceSink, RingSink
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecord, Tracer


def rec(t=1.0, cat="net", node=0, ev="x", **details) -> TraceRecord:
    return TraceRecord(t, cat, node, ev, details)


# ---------------------------------------------------------------------- #
# Schema
# ---------------------------------------------------------------------- #
class TestSchema:
    def test_record_layout(self):
        d = record_to_dict(rec(2.5, "mac", 3, "data_tx", dst=7))
        assert d == {"t": 2.5, "cat": "mac", "node": 3, "ev": "data_tx", "dst": 7}

    def test_reserved_detail_keys_prefixed(self):
        d = record_to_dict(rec(cat="app", ev="deliver", t=9.0, kind="odd"))
        assert d["ev"] == "deliver"
        assert d["x_kind"] == "odd"
        assert d["t"] == 9.0

    def test_header_and_footer_versioned(self):
        assert trace_header()["schema"] == TRACE_SCHEMA_VERSION
        assert trace_header({"seed": 3})["seed"] == 3
        f = trace_footer(10, 2, {"net": 10})
        assert f["kind"] == "footer" and f["recorded"] == 10

    def test_header_meta_cannot_shadow_envelope(self):
        h = trace_header({"schema": 99, "kind": "evil", "protocol": "nlr"})
        assert h["schema"] == TRACE_SCHEMA_VERSION
        assert h["kind"] == "header"
        assert h["protocol"] == "nlr"

    def test_validate_good_lines(self):
        assert validate_trace_line(trace_header()) == []
        assert validate_trace_line(trace_footer(1, 0, {})) == []
        assert validate_trace_line(record_to_dict(rec())) == []

    @pytest.mark.parametrize(
        "bad",
        [
            {"t": 1.0, "cat": "net", "node": 0},                  # no ev
            {"t": "x", "cat": "net", "node": 0, "ev": "e"},       # t not num
            {"t": math.inf, "cat": "net", "node": 0, "ev": "e"},  # t not finite
            {"t": 1.0, "cat": 5, "node": 0, "ev": "e"},           # cat not str
            {"t": 1.0, "cat": "net", "node": True, "ev": "e"},    # node bool
            {"kind": "header", "schema": 999},                    # bad version
            ["not", "an", "object"],
        ],
    )
    def test_validate_rejects(self, bad):
        assert validate_trace_line(bad) != []


# ---------------------------------------------------------------------- #
# Sinks
# ---------------------------------------------------------------------- #
class TestJsonlTraceSink:
    def read(self, path):
        opener = gzip.open if path.suffix == ".gz" else open
        with opener(path, "rt") as fh:
            return [json.loads(line) for line in fh]

    def test_header_records_footer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path, meta={"seed": 7}) as sink:
            sink(rec(1.0, "net", 0, "a"))
            sink(rec(2.0, "mac", 1, "b"))
        lines = self.read(path)
        assert lines[0]["kind"] == "header" and lines[0]["seed"] == 7
        assert [ln["ev"] for ln in lines[1:3]] == ["a", "b"]
        assert lines[-1]["kind"] == "footer"
        assert lines[-1]["recorded"] == 2
        assert lines[-1]["by_category"] == {"mac": 1, "net": 1}
        assert all(validate_trace_line(ln) == [] for ln in lines)

    def test_gzip_inferred_from_suffix(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with JsonlTraceSink(path) as sink:
            assert sink.compressed
            sink(rec())
        assert self.read(path)[1]["ev"] == "x"

    def test_bounded_memory_buffer(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl", buffer_lines=10)
        for i in range(1000):
            sink(rec(t=float(i)))
        assert len(sink._buffer) < 10  # buffer drained, not accumulated
        sink.close()
        assert sink.recorded == 1000
        assert len(self.read(tmp_path / "t.jsonl")) == 1002

    def test_close_idempotent_and_emit_after_close(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink(rec())
        sink.close()
        sink.close()
        sink(rec())  # silently ignored
        assert sink.recorded == 1

    def test_warning_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.warn("retention full")
        warnings = [ln for ln in self.read(path) if ln.get("kind") == "warning"]
        assert warnings and "retention full" in warnings[0]["message"]


class TestRingSink:
    def test_keeps_last_n(self):
        ring = RingSink(capacity=3)
        for i in range(10):
            ring(rec(t=float(i)))
        assert ring.seen == 10
        assert len(ring) == 3
        assert [r.time for r in ring.records()] == [7.0, 8.0, 9.0]
        assert "last 3 of 10" in ring.dump()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingSink(capacity=0)


class TestCompositeSink:
    def test_fans_out(self, tmp_path):
        ring = RingSink(5)
        jsonl = JsonlTraceSink(tmp_path / "t.jsonl")
        combo = CompositeSink(jsonl, ring)
        combo(rec())
        combo.warn("w")
        combo.close()
        assert ring.seen == 1 and jsonl.recorded == 1

    def test_needs_a_sink(self):
        with pytest.raises(ValueError):
            CompositeSink()


# ---------------------------------------------------------------------- #
# Tracer retention accounting (satellite: no more silent truncation)
# ---------------------------------------------------------------------- #
class TestTracerAccounting:
    def test_drops_counted_per_category(self, capsys):
        tr = Tracer(enabled=True, max_records=2)
        for i in range(3):
            tr.record(float(i), "net", 0, "e")
        tr.record(3.0, "mac", 0, "e")
        assert tr.recorded == 4
        assert len(tr) == 2
        assert tr.dropped == 2
        assert tr.dropped_by_category == {"net": 1, "mac": 1}
        assert "dropped=2" in str(tr)
        assert "warning" in capsys.readouterr().err.lower()

    def test_overflow_warned_once_via_sink(self, tmp_path, capsys):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        tr = Tracer(enabled=True, max_records=1, sink=sink)
        for i in range(5):
            tr.record(float(i), "net", 0, "e")
        sink.close()
        with open(tmp_path / "t.jsonl") as fh:
            lines = [json.loads(ln) for ln in fh]
        assert sum(1 for ln in lines if ln.get("kind") == "warning") == 1
        assert capsys.readouterr().err == ""  # warned via sink, not stderr

    def test_sink_receives_past_retention_bound(self, tmp_path):
        ring = RingSink(100)
        tr = Tracer(enabled=True, max_records=2, sink=ring)
        for i in range(50):
            tr.record(float(i), "net", 0, "e")
        assert len(tr) == 2       # memory bounded
        assert ring.seen == 50    # stream complete

    def test_summary_and_clear(self):
        tr = Tracer(enabled=True, max_records=1)
        tr.record(0.0, "net", 0, "a")
        tr.record(1.0, "net", 0, "b")
        s = tr.summary()
        assert s["recorded"] == 2 and s["retained"] == 1 and s["dropped"] == 1
        assert s["retained_by_category"] == {"net": 1}
        tr.clear()
        assert tr.recorded == 0 and tr.dropped == 0 and len(tr) == 0

    def test_retain_false_streams_without_memory(self):
        ring = RingSink(10)
        tr = Tracer(enabled=True, retain=False, sink=ring)
        for i in range(5):
            tr.record(float(i), "net", 0, "e")
        assert len(tr) == 0 and tr.dropped == 0 and ring.seen == 5

    def test_disabled_records_nothing(self):
        tr = Tracer()
        tr.record(0.0, "net", 0, "e")
        assert tr.recorded == 0 and len(tr) == 0


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "help")
        c.inc()
        c.labels(kind="a").inc(2)
        c.labels(kind="a").inc()  # same child
        out = reg.metrics_json()
        assert out["repro_x_total"] == 1.0
        assert out['repro_x_total{kind="a"}'] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c", "h").inc(-1)

    def test_gauge_set_and_fn(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", "h").set(4.5)
        state = {"v": 7.0}
        reg.gauge("repro_fn", "h", fn=lambda: state["v"])
        out = reg.metrics_json()
        assert out["repro_g"] == 4.5 and out["repro_fn"] == 7.0
        state["v"] = 8.0
        assert reg.metrics_json()["repro_fn"] == 8.0

    def test_histogram_cumulative_buckets(self):
        h = Histogram("repro_h", "h", buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 100.0):
            h.observe(v)
        h.observe(math.nan)  # skipped
        series = dict(h.series())
        assert series['repro_h_bucket{le="1"}'] == 2.0
        assert series['repro_h_bucket{le="5"}'] == 3.0
        assert series['repro_h_bucket{le="+Inf"}'] == 4.0
        assert series["repro_h_count"] == 4.0
        assert series["repro_h_sum"] == pytest.approx(104.2)
        h.reset()
        assert dict(h.series())["repro_h_count"] == 0.0

    def test_registry_get_or_create_and_type_clash(self):
        reg = MetricsRegistry()
        c1 = reg.counter("repro_c", "h")
        assert reg.counter("repro_c", "h") is c1
        with pytest.raises(ValueError):
            reg.gauge("repro_c", "h")
        assert "repro_c" in reg
        assert reg.get("repro_c") is c1

    def test_collect_hooks_run_on_snapshot(self):
        reg = MetricsRegistry()
        reg.on_collect(lambda r: r.gauge("repro_hooked", "h").set(1.0))
        assert reg.metrics_json()["repro_hooked"] == 1.0

    def test_snapshot_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.gauge("repro_b", "h").set(2)
        reg.gauge("repro_a", "h").set(1)
        out = reg.metrics_json()
        assert list(out) == sorted(out)
        assert json.dumps(out) == json.dumps(reg.metrics_json())

    def test_render_is_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_r_total", "things").inc(3)
        text = reg.render()
        assert "repro_r_total" in text and "3" in text


# ---------------------------------------------------------------------- #
# Engine profiler
# ---------------------------------------------------------------------- #
class TestProfiler:
    def test_attribution_by_layer_and_callback(self):
        prof = EngineProfiler()
        sim = Simulator()
        sim.set_profiler(prof)
        hits = []
        sim.schedule(1.0, hits.append, 1)
        sim.schedule(2.0, hits.append, 2)
        sim.run(until=3.0)
        assert hits == [1, 2]
        assert prof.events == 2
        data = prof.as_dict()
        assert data["events"] == 2
        assert sum(c["events"] for c in data["callbacks"]) == 2
        assert data["total_time_s"] >= 0.0

    def test_disabled_by_default(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)  # plain path still works

    def test_sampling_keeps_counts_exact(self):
        prof = EngineProfiler(sample_every=3)
        sim = Simulator()
        sim.set_profiler(prof)
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(until=20.0)
        assert prof.events == 10  # counts exact even when sampled

    def test_report_renders(self):
        prof = EngineProfiler()
        prof.record(self.test_report_renders, 0.001)
        out = prof.report()
        assert "engine profile" in out and "test_report_renders" in out

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            EngineProfiler(sample_every=0)
