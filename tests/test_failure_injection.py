"""Failure-injection tests: node crashes and network self-healing."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_network
from repro.phy.channel import Channel
from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio, RadioState
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.rng import RandomStreams

#: The whole module is part of the CI chaos suite (seed-swept).
pytestmark = pytest.mark.chaos


def build(protocol="aodv", **kw):
    defaults = dict(
        protocol=protocol, topology="chain", n_nodes=4, spacing_m=200.0,
        n_flows=1, sim_time_s=30.0, warmup_s=1.0, seed=9,
    )
    defaults.update(kw)
    config = ScenarioConfig(**defaults)
    net = build_network(config)
    # Replace the random flow with a deterministic end-to-end one.
    from repro.traffic.flows import FlowSpec
    from repro.traffic.generators import CbrSource

    net.sources.clear()
    flow = FlowSpec(flow_id=0, src=0, dst=3, rate_pps=10.0,
                    start_s=1.0, stop_s=config.sim_time_s)
    net.flows = [flow]
    net.sources.append(
        CbrSource(net.sim, net.stacks[0], flow,
                  on_send=net.collector.on_send)
    )
    return net


class TestRadioPowerState:
    def test_powered_off_radio_is_deaf_and_mute(self):
        net = build()
        net.start()
        net.sim.run(until=3.0)
        radio = net.stacks[1].mac.radio
        radio.set_power_state(False)
        with pytest.raises(SimulationError):
            radio.transmit(None)  # type: ignore[arg-type]
        assert radio.state is RadioState.IDLE
        # signals in flight toward the dead radio must not crash the sim
        net.sim.run(until=5.0)

    def test_power_cycle_restores_reception(self):
        net = build()
        net.start()
        net.sim.run(until=2.0)
        radio = net.stacks[1].mac.radio
        radio.set_power_state(False)
        net.sim.run(until=4.0)
        radio.set_power_state(True)
        before = radio.frames_received
        net.sim.run(until=8.0)
        assert radio.frames_received > before

    def test_double_toggle_idempotent(self):
        net = build()
        radio = net.stacks[1].mac.radio
        radio.set_power_state(False)
        radio.set_power_state(False)
        radio.set_power_state(True)
        radio.set_power_state(True)
        assert radio.powered


class TestMidFlightPowerOff:
    """Regression: powering off mid-reception/transmission must abort the
    in-flight frame cleanly — no stale ``tx_end``, no MAC deadlock."""

    def _pair(self):
        sim = Simulator()
        channel = Channel(sim, TwoRayGround())
        streams = RandomStreams(3)
        radios = []
        for i in range(2):
            r = Radio(sim, i, PhyConfig(), streams.stream(f"phy.rx.{i}"))
            channel.register(r, (i * 100.0, 0.0))
            radios.append(r)
        return sim, radios

    @staticmethod
    def _frame(payload, node):
        # 8000 bits at 1 Mb/s, no preamble: exactly 8 ms of airtime.
        return PhyFrame(payload=payload, bits=8000, rate_bps=1e6,
                        preamble_s=0.0, tx_power_w=0.28, tx_node=node)

    def test_power_off_mid_tx_aborts_cleanly(self):
        sim, (tx, _rx) = self._pair()
        done, aborted = [], []
        tx.tx_done_callback = lambda: done.append(sim.now)
        tx.tx_abort_callback = lambda: aborted.append(sim.now)
        sim.schedule(1.0, tx.transmit, self._frame("x", 0))
        sim.schedule(1.004, tx.set_power_state, False)  # mid-air
        sim.run(until=1.1)
        assert aborted == [1.004]
        assert done == []  # tx_done must never fire for the torn-down frame
        assert tx.state is RadioState.IDLE
        assert tx._tx_frame is None and tx._tx_end_handle is None

    def test_stale_tx_end_cannot_complete_new_frame(self):
        # Power-cycle mid-TX, then start a NEW 8 ms frame.  The aborted
        # frame's tx_end (1.008, were it not cancelled) must not complete
        # the new frame 4 ms early.
        sim, (tx, _rx) = self._pair()
        done = []
        tx.tx_done_callback = lambda: done.append(sim.now)
        sim.schedule(1.0, tx.transmit, self._frame("a", 0))

        def cycle():
            tx.set_power_state(False)
            tx.set_power_state(True)
            tx.transmit(self._frame("b", 0))  # ends at 1.012

        sim.schedule(1.004, cycle)
        sim.run(until=1.1)
        assert done == [pytest.approx(1.012)]

    def test_power_off_mid_rx_aborts_reception(self):
        sim, (tx, rx) = self._pair()
        got = []
        rx.rx_callback = lambda payload, info: got.append(payload)
        sim.schedule(1.0, tx.transmit, self._frame("x", 0))
        sim.schedule(1.004, rx.set_power_state, False)  # mid-reception
        sim.run(until=1.1)
        assert got == []
        assert rx.state is RadioState.IDLE and rx._current is None
        # power back on: the next frame decodes normally
        rx.set_power_state(True)
        sim.schedule(2.0, tx.transmit, self._frame("y", 0))
        sim.run(until=2.1)
        assert got == ["y"]

    def test_mac_survives_power_off_during_own_tx(self):
        # Catch the source MAC mid-transmission, kill the radio under it,
        # restore it, and require the flow to keep delivering — the old
        # bug left the MAC waiting forever on a tx_done that never came.
        net = build()
        net.start()
        mac = net.stacks[0].mac
        caught = []

        def poll():
            if caught:
                return
            if mac.radio.state is RadioState.TX:
                caught.append(net.sim.now)
                mac.radio_off()
                net.sim.schedule_in(0.5, mac.radio_on)
            else:
                net.sim.schedule_in(0.0005, poll)

        net.sim.schedule(2.0, poll)
        net.sim.run(until=30.0)
        net.stop()
        assert caught, "poller never saw an active transmission"
        rec = net.collector.flows[0]
        assert rec.last_rx > caught[0] + 1.0  # traffic resumed afterwards


class TestNodeCrashOnChain:
    def test_relay_crash_kills_chain_flow(self):
        # On a chain there is no alternate path: the flow must die while
        # node 1 is down and the origin must start failing discoveries.
        net = build()
        net.start()
        net.sim.schedule(5.0, net.stacks[1].fail)
        net.sim.run(until=20.0)
        net.stop()
        r0 = net.stacks[0].routing
        assert r0.discoveries_failed > 0 or r0.data_dropped_link > 0
        rec = net.collector.flows[0]
        assert rec.received < rec.sent  # packets were lost after the crash

    def test_crash_and_recovery_heals_flow(self):
        net = build()
        net.start()
        net.sim.schedule(5.0, net.stacks[1].fail)
        net.sim.schedule(12.0, net.stacks[1].recover)
        net.sim.run(until=30.0)
        net.stop()
        # deliveries resumed after recovery: count arrivals created late
        late = [
            p_seq for p_seq in net.collector.flows[0]._seen
        ]
        rec = net.collector.flows[0]
        assert rec.received > 0
        # the last delivered packet was originated well after recovery
        assert rec.last_rx > 14.0


class TestCrashWithAlternatePath:
    def test_grid_routes_around_dead_router(self):
        # 3×3 grid, flow corner-to-corner: killing one on-path relay must
        # not kill delivery — AODV reroutes via the other side.
        config = ScenarioConfig(
            protocol="aodv", grid_nx=3, grid_ny=3, n_flows=1,
            sim_time_s=30.0, warmup_s=1.0, seed=11,
        )
        net = build_network(config)
        from repro.traffic.flows import FlowSpec
        from repro.traffic.generators import CbrSource

        net.sources.clear()
        flow = FlowSpec(flow_id=0, src=0, dst=8, rate_pps=10.0,
                        start_s=1.0, stop_s=30.0)
        net.flows = [flow]
        net.sources.append(
            CbrSource(net.sim, net.stacks[0], flow,
                      on_send=net.collector.on_send)
        )
        net.start()
        net.sim.run(until=5.0)
        # find the relay actually carrying the flow and kill it
        loads = [(s.routing.data_forwarded, s.node_id) for s in net.stacks]
        _, busiest = max(loads)
        assert busiest not in (0, 8)
        net.stacks[busiest].fail()
        net.sim.run(until=30.0)
        net.stop()
        rec = net.collector.flows[0]
        # the large majority of packets still arrive (short outage only)
        assert rec.received / rec.sent > 0.85
        # and someone other than the dead node carried them afterwards
        others = sum(
            s.routing.data_forwarded
            for s in net.stacks
            if s.node_id not in (0, 8, busiest)
        )
        assert others > 0
