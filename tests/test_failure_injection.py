"""Failure-injection tests: node crashes and network self-healing."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_network
from repro.phy.radio import RadioState
from repro.sim.errors import SimulationError


def build(protocol="aodv", **kw):
    defaults = dict(
        protocol=protocol, topology="chain", n_nodes=4, spacing_m=200.0,
        n_flows=1, sim_time_s=30.0, warmup_s=1.0, seed=9,
    )
    defaults.update(kw)
    config = ScenarioConfig(**defaults)
    net = build_network(config)
    # Replace the random flow with a deterministic end-to-end one.
    from repro.traffic.flows import FlowSpec
    from repro.traffic.generators import CbrSource

    net.sources.clear()
    flow = FlowSpec(flow_id=0, src=0, dst=3, rate_pps=10.0,
                    start_s=1.0, stop_s=config.sim_time_s)
    net.flows = [flow]
    net.sources.append(
        CbrSource(net.sim, net.stacks[0], flow,
                  on_send=net.collector.on_send)
    )
    return net


class TestRadioPowerState:
    def test_powered_off_radio_is_deaf_and_mute(self):
        net = build()
        net.start()
        net.sim.run(until=3.0)
        radio = net.stacks[1].mac.radio
        radio.set_power_state(False)
        with pytest.raises(SimulationError):
            radio.transmit(None)  # type: ignore[arg-type]
        assert radio.state is RadioState.IDLE
        # signals in flight toward the dead radio must not crash the sim
        net.sim.run(until=5.0)

    def test_power_cycle_restores_reception(self):
        net = build()
        net.start()
        net.sim.run(until=2.0)
        radio = net.stacks[1].mac.radio
        radio.set_power_state(False)
        net.sim.run(until=4.0)
        radio.set_power_state(True)
        before = radio.frames_received
        net.sim.run(until=8.0)
        assert radio.frames_received > before

    def test_double_toggle_idempotent(self):
        net = build()
        radio = net.stacks[1].mac.radio
        radio.set_power_state(False)
        radio.set_power_state(False)
        radio.set_power_state(True)
        radio.set_power_state(True)
        assert radio.powered


class TestNodeCrashOnChain:
    def test_relay_crash_kills_chain_flow(self):
        # On a chain there is no alternate path: the flow must die while
        # node 1 is down and the origin must start failing discoveries.
        net = build()
        net.start()
        net.sim.schedule(5.0, net.stacks[1].fail)
        net.sim.run(until=20.0)
        net.stop()
        r0 = net.stacks[0].routing
        assert r0.discoveries_failed > 0 or r0.data_dropped_link > 0
        rec = net.collector.flows[0]
        assert rec.received < rec.sent  # packets were lost after the crash

    def test_crash_and_recovery_heals_flow(self):
        net = build()
        net.start()
        net.sim.schedule(5.0, net.stacks[1].fail)
        net.sim.schedule(12.0, net.stacks[1].recover)
        net.sim.run(until=30.0)
        net.stop()
        # deliveries resumed after recovery: count arrivals created late
        late = [
            p_seq for p_seq in net.collector.flows[0]._seen
        ]
        rec = net.collector.flows[0]
        assert rec.received > 0
        # the last delivered packet was originated well after recovery
        assert rec.last_rx > 14.0


class TestCrashWithAlternatePath:
    def test_grid_routes_around_dead_router(self):
        # 3×3 grid, flow corner-to-corner: killing one on-path relay must
        # not kill delivery — AODV reroutes via the other side.
        config = ScenarioConfig(
            protocol="aodv", grid_nx=3, grid_ny=3, n_flows=1,
            sim_time_s=30.0, warmup_s=1.0, seed=11,
        )
        net = build_network(config)
        from repro.traffic.flows import FlowSpec
        from repro.traffic.generators import CbrSource

        net.sources.clear()
        flow = FlowSpec(flow_id=0, src=0, dst=8, rate_pps=10.0,
                        start_s=1.0, stop_s=30.0)
        net.flows = [flow]
        net.sources.append(
            CbrSource(net.sim, net.stacks[0], flow,
                      on_send=net.collector.on_send)
        )
        net.start()
        net.sim.run(until=5.0)
        # find the relay actually carrying the flow and kill it
        loads = [(s.routing.data_forwarded, s.node_id) for s in net.stacks]
        _, busiest = max(loads)
        assert busiest not in (0, 8)
        net.stacks[busiest].fail()
        net.sim.run(until=30.0)
        net.stop()
        rec = net.collector.flows[0]
        # the large majority of packets still arrive (short outage only)
        assert rec.received / rec.sent > 0.85
        # and someone other than the dead node carried them afterwards
        others = sum(
            s.routing.data_forwarded
            for s in net.stacks
            if s.node_id not in (0, 8, busiest)
        )
        assert others > 0
