"""Unit tests for the load-adaptive forwarding policy."""

import numpy as np
import pytest

from repro.core.forwarding_policy import LoadAdaptiveGossip
from repro.net.gossip import PolicyContext


def ctx(hop=3, neighbours=6, load=0.0, dups=0):
    return PolicyContext(
        node_id=1, hop_count=hop, neighbour_count=neighbours,
        neighbourhood_load=load, duplicates_seen=dups,
    )


def make(rng_seed=1, **kw):
    return LoadAdaptiveGossip(np.random.default_rng(rng_seed), **kw)


class TestProbabilityCurve:
    def test_zero_load_is_p_max(self):
        p = make(p_max=1.0, p_min=0.4, gamma=0.6)
        assert p.probability(0.0) == 1.0

    def test_full_load_hits_floor(self):
        p = make(p_max=1.0, p_min=0.4, gamma=0.9)
        assert p.probability(1.0) == pytest.approx(0.4)

    def test_linear_in_between(self):
        p = make(p_max=1.0, p_min=0.1, gamma=0.6)
        assert p.probability(0.5) == pytest.approx(0.7)

    def test_load_clamped(self):
        p = make()
        assert p.probability(-1.0) == p.probability(0.0)
        assert p.probability(2.0) == p.probability(1.0)

    def test_monotone_nonincreasing(self):
        p = make(gamma=0.8, p_min=0.2)
        probs = [p.probability(x) for x in np.linspace(0, 1, 11)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))


class TestSafeguards:
    def test_first_hops_forced(self):
        p = make(gamma=10.0, p_min=0.4, always_first_hops=2)
        for _ in range(50):
            assert p.decide(ctx(hop=0, load=1.0)).forward
            assert p.decide(ctx(hop=1, load=1.0)).forward
        assert p.forced_forwards == 100

    def test_sparse_nodes_forced(self):
        p = make(sparse_degree=4)
        for _ in range(50):
            assert p.decide(ctx(neighbours=3, load=1.0)).forward

    def test_dense_loaded_node_uses_coin(self):
        p = make(p_min=0.4, gamma=0.6)
        n = 4000
        fwd = sum(p.decide(ctx(load=1.0)).forward for _ in range(n))
        assert fwd / n == pytest.approx(0.4, abs=0.03)
        assert p.coin_flips == n

    def test_unloaded_forwards_at_p_max(self):
        p = make(p_max=1.0)
        assert all(p.decide(ctx(load=0.0)).forward for _ in range(100))


class TestLoadProvider:
    def test_provider_overrides_context(self):
        p = make(load_provider=lambda: 1.0, p_min=0.4, gamma=0.6)
        n = 2000
        fwd = sum(p.decide(ctx(load=0.0)).forward for _ in range(n))
        # provider says fully loaded even though ctx says idle
        assert fwd / n == pytest.approx(0.4, abs=0.04)


class TestValidation:
    def test_p_ordering(self):
        with pytest.raises(ValueError):
            make(p_min=0.9, p_max=0.5)
        with pytest.raises(ValueError):
            make(p_min=0.0)

    def test_negative_gamma(self):
        with pytest.raises(ValueError):
            make(gamma=-0.1)

    def test_negative_safeguards(self):
        with pytest.raises(ValueError):
            make(always_first_hops=-1)
