"""Unit tests for the radio state machine and the shared channel."""

import numpy as np
import pytest

from repro.phy.channel import Channel
from repro.phy.error_models import SinrThresholdErrorModel
from repro.phy.frame import PhyFrame, RxInfo
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio, RadioState
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.rng import RandomStreams


def make_net(positions, sim=None, capture=True, prop_delay=False):
    sim = sim or Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=prop_delay)
    rs = RandomStreams(5)
    radios = []
    for i, pos in enumerate(positions):
        r = Radio(
            sim, i, PhyConfig(capture_enabled=capture), rs.stream(f"phy{i}"),
            error_model=SinrThresholdErrorModel(10.0),
        )
        ch.register(r, pos)
        radios.append(r)
    return sim, ch, radios


def frame(tx_node, bits=8000, rate=11e6):
    return PhyFrame(
        payload=f"payload-{tx_node}",
        bits=bits,
        rate_bps=rate,
        preamble_s=192e-6,
        tx_power_w=PhyConfig().tx_power_w,
        tx_node=tx_node,
    )


class TestBasicReception:
    def test_in_range_delivery(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        got = []
        radios[1].rx_callback = lambda p, info: got.append((p, info))
        radios[0].transmit(frame(0))
        sim.run()
        assert len(got) == 1
        assert got[0][0] == "payload-0"
        assert isinstance(got[0][1], RxInfo)
        assert got[0][1].tx_node == 0

    def test_out_of_range_not_locked(self):
        sim, ch, radios = make_net([(0, 0), (400, 0)])
        got = []
        radios[1].rx_callback = lambda p, info: got.append(p)
        radios[0].transmit(frame(0))
        sim.run()
        assert got == []

    def test_rx_info_timing(self):
        sim, ch, radios = make_net([(0, 0), (100, 0)])
        infos = []
        radios[1].rx_callback = lambda p, info: infos.append(info)
        f = frame(0)
        radios[0].transmit(f)
        sim.run()
        assert infos[0].end_time - infos[0].start_time == pytest.approx(
            f.duration_s
        )

    def test_half_duplex_no_self_reception(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        got0 = []
        radios[0].rx_callback = lambda p, info: got0.append(p)
        radios[0].transmit(frame(0))
        sim.run()
        assert got0 == []

    def test_transmit_while_tx_raises(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        radios[0].transmit(frame(0))
        with pytest.raises(SimulationError):
            radios[0].transmit(frame(0))

    def test_tx_done_callback(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        done = []
        radios[0].tx_done_callback = lambda: done.append(sim.now)
        f = frame(0)
        radios[0].transmit(f)
        sim.run()
        assert done == [pytest.approx(f.duration_s)]

    def test_unattached_radio_rejects_tx(self):
        sim = Simulator()
        r = Radio(sim, 0, PhyConfig(), RandomStreams(0).stream("x"))
        with pytest.raises(SimulationError):
            r.transmit(frame(0))


class TestCollisions:
    def test_simultaneous_equal_power_collision(self):
        # Two senders equidistant from the receiver, same instant: SINR ≈ 1
        # (0 dB) at the receiver → both corrupted under a 10 dB threshold.
        sim, ch, radios = make_net([(0, 0), (200, 100), (200, -100)])
        got = []
        radios[0].rx_callback = lambda p, info: got.append(p)
        sim.schedule(0.0, radios[1].transmit, frame(1))
        sim.schedule(0.0, radios[2].transmit, frame(2))
        sim.run()
        assert got == []
        assert radios[0].frames_corrupted >= 1

    def test_capture_by_much_stronger_late_frame(self):
        # Weak frame locks first; a far stronger one arrives and captures.
        sim, ch, radios = make_net([(0, 0), (240, 0), (20, 0)])
        got = []
        radios[0].rx_callback = lambda p, info: got.append(p)
        sim.schedule(0.0, radios[1].transmit, frame(1))
        sim.schedule(0.0001, radios[2].transmit, frame(2))
        sim.run()
        assert got == ["payload-2"]
        assert radios[0].frames_captured == 1

    def test_no_capture_when_disabled(self):
        sim, ch, radios = make_net([(0, 0), (240, 0), (20, 0)], capture=False)
        got = []
        radios[0].rx_callback = lambda p, info: got.append(p)
        sim.schedule(0.0, radios[1].transmit, frame(1))
        sim.schedule(0.0001, radios[2].transmit, frame(2))
        sim.run()
        assert got == []  # first ruined by interference, second never locked

    def test_weak_interferer_does_not_break_strong_frame(self):
        # Interferer is far: SINR stays above 10 dB → frame survives.
        sim, ch, radios = make_net([(0, 0), (100, 0), (900, 0)])
        got = []
        radios[0].rx_callback = lambda p, info: got.append(p)
        sim.schedule(0.0, radios[1].transmit, frame(1))
        sim.schedule(0.0001, radios[2].transmit, frame(2))
        sim.run()
        assert got == ["payload-1"]

    def test_tx_preempts_reception(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        got = []
        radios[1].rx_callback = lambda p, info: got.append(p)
        sim.schedule(0.0, radios[0].transmit, frame(0))
        # Receiver starts its own transmission mid-reception.
        sim.schedule(0.0002, radios[1].transmit, frame(1))
        sim.run()
        assert got == []
        assert radios[1].frames_corrupted == 1


class TestCarrierSense:
    def test_cca_busy_within_cs_range(self):
        # 400 m: beyond rx range (250) but inside cs range (550).
        sim, ch, radios = make_net([(0, 0), (400, 0)])
        transitions = []
        radios[1].cca_callback = lambda busy: transitions.append((sim.now, busy))
        f = frame(0)
        radios[0].transmit(f)
        sim.run()
        assert transitions[0][1] is True
        assert transitions[-1][1] is False
        busy_span = transitions[-1][0] - transitions[0][0]
        assert busy_span == pytest.approx(f.duration_s)

    def test_cca_idle_beyond_cull(self):
        sim, ch, radios = make_net([(0, 0), (3000, 0)])
        transitions = []
        radios[1].cca_callback = lambda busy: transitions.append(busy)
        radios[0].transmit(frame(0))
        sim.run()
        assert transitions == []

    def test_own_tx_is_busy(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        assert not radios[0].cca_busy
        radios[0].transmit(frame(0))
        assert radios[0].cca_busy
        sim.run()
        assert not radios[0].cca_busy


class TestChannel:
    def test_register_duplicate_rejected(self):
        sim, ch, radios = make_net([(0, 0)])
        extra = Radio(sim, 0, PhyConfig(), RandomStreams(1).stream("z"))
        with pytest.raises(SimulationError):
            ch.register(extra, (1, 1))

    def test_positions_update(self):
        sim, ch, radios = make_net([(0, 0), (100, 0)])
        ch.set_position(1, (500, 500))
        assert np.allclose(ch.position_of(1), [500, 500])

    def test_unknown_node_rejected(self):
        sim, ch, radios = make_net([(0, 0)])
        with pytest.raises(SimulationError):
            ch.position_of(42)

    def test_neighbors_within(self):
        sim, ch, radios = make_net([(0, 0), (100, 0), (600, 0)])
        assert ch.neighbors_within(0, 250.0) == [1]
        assert set(ch.neighbors_within(1, 550.0)) == {0, 2}

    def test_propagation_delay_defers_arrival(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)], prop_delay=True)
        infos = []
        radios[1].rx_callback = lambda p, info: infos.append(info)
        radios[0].transmit(frame(0))
        sim.run()
        assert infos[0].start_time == pytest.approx(200 / 299_792_458.0)

    def test_transmission_counter(self):
        sim, ch, radios = make_net([(0, 0), (200, 0)])
        radios[0].transmit(frame(0))
        sim.run()
        assert ch.transmissions == 1
