"""Unit tests for HELLO/neighbour tables and rebroadcast policies."""

import numpy as np
import pytest

from repro.net.gossip import (
    BlindFlooding,
    CounterBasedPolicy,
    FixedProbabilityGossip,
    PolicyContext,
)
from repro.net.hello import NeighbourTable
from repro.sim.engine import Simulator


def ctx(hop=3, neighbours=5, load=0.0, dups=0):
    return PolicyContext(
        node_id=1, hop_count=hop, neighbour_count=neighbours,
        neighbourhood_load=load, duplicates_seen=dups,
    )


class TestNeighbourTable:
    def test_heard_registers(self):
        t = NeighbourTable(Simulator())
        t.heard(3, load=0.5, neighbour_count=4)
        n = t.get(3)
        assert n is not None and n.load == 0.5 and n.neighbour_count == 4

    def test_staleness_expiry(self):
        sim = Simulator()
        t = NeighbourTable(sim, lifetime_s=1.0)
        t.heard(3)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert 3 not in t
        assert len(t) == 0

    def test_reheard_refreshes(self):
        sim = Simulator()
        t = NeighbourTable(sim, lifetime_s=1.0)
        t.heard(3)
        sim.schedule(0.8, t.heard, 3)
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert 3 in t

    def test_heard_without_load_keeps_previous(self):
        t = NeighbourTable(Simulator())
        t.heard(3, load=0.7)
        t.heard(3)  # data packet, no load info
        assert t.get(3).load == 0.7

    def test_mean_advertised_load(self):
        t = NeighbourTable(Simulator())
        assert t.mean_advertised_load() == 0.0
        t.heard(1, load=0.2)
        t.heard(2, load=0.6)
        assert t.mean_advertised_load() == pytest.approx(0.4)

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            NeighbourTable(Simulator(), lifetime_s=0.0)


class TestBlindFlooding:
    def test_always_forwards(self):
        p = BlindFlooding()
        for hop in (0, 5, 30):
            assert p.decide(ctx(hop=hop)).forward


class TestFixedGossip:
    def test_probability_respected_statistically(self):
        rng = np.random.default_rng(1)
        p = FixedProbabilityGossip(0.3, rng, always_first_hops=0)
        n = 5000
        forwards = sum(p.decide(ctx()).forward for _ in range(n))
        assert forwards / n == pytest.approx(0.3, abs=0.03)

    def test_first_hops_always_forward(self):
        rng = np.random.default_rng(1)
        p = FixedProbabilityGossip(0.01, rng, always_first_hops=2)
        assert all(p.decide(ctx(hop=h)).forward for h in (0, 1) for _ in range(50))

    def test_p_one_always_forwards(self):
        rng = np.random.default_rng(1)
        p = FixedProbabilityGossip(1.0, rng)
        assert all(p.decide(ctx()).forward for _ in range(100))

    def test_invalid_p(self):
        rng = np.random.default_rng(1)
        for bad in (0.0, 1.1, -0.5):
            with pytest.raises(ValueError):
                FixedProbabilityGossip(bad, rng)


class TestCounterBased:
    def test_initial_decision_defers(self):
        p = CounterBasedPolicy(3, np.random.default_rng(2), rad_max_s=0.01)
        d = p.decide(ctx())
        assert d.forward
        assert 0.0 <= d.assessment_delay_s <= 0.01

    def test_suppresses_at_threshold(self):
        p = CounterBasedPolicy(3, np.random.default_rng(2))
        assert p.decide_deferred(ctx(dups=2))
        assert not p.decide_deferred(ctx(dups=3))
        assert not p.decide_deferred(ctx(dups=10))

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            CounterBasedPolicy(0, rng)
        with pytest.raises(ValueError):
            CounterBasedPolicy(3, rng, rad_max_s=0.0)
